"""Tests for the DPOR schedule explorer (repro.analysis.explore)."""

import json

import pytest

from repro.analysis.explore import (
    MUTATIONS,
    PRESETS,
    ChoiceTrace,
    ExploreConfig,
    _conflict_key,
    _fifo_ok,
    _minimize,
    _run_schedule,
    _strip_defaults,
    explore,
    replay_trace,
)

pytestmark = pytest.mark.no_sanitize  # explorer sanitizes its own runs


class TestExploreClean:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_hundred_inequivalent_schedules_clean(self, preset):
        # Acceptance: >= 100 inequivalent schedules per sync model with
        # zero violations; pruning ratio reported.
        report = explore(
            ExploreConfig(
                preset=preset,
                max_schedules=150,
                target_inequivalent=100,
            )
        )
        assert report.ok, report.describe()
        assert report.inequivalent >= 100
        assert report.runs >= report.inequivalent
        assert 0.0 < report.pruning_ratio < 1.0
        assert "DPOR pruning" in report.describe()

    def test_equivalent_prefixes_share_signature_and_params(self):
        # Flipping a non-conflicting tie must land on the same
        # Mazurkiewicz trace: identical delivery signature, identical
        # final parameter bytes (the independence relation, checked).
        cfg = ExploreConfig(preset="ssp", max_iter=2)
        base = _run_schedule(cfg, [])
        assert base.error is None and base.report.ok
        flipped = None
        for i, d in enumerate(base.decisions):
            chosen_key = _conflict_key(d.labels[d.chosen])
            for j in range(1, len(d.labels)):
                key = _conflict_key(d.labels[j])
                if (key is None or key != chosen_key) and _fifo_ok(d.labels, j):
                    prefix = [dd.chosen for dd in base.decisions[:i]] + [j]
                    flipped = _run_schedule(cfg, prefix)
                    break
            if flipped is not None:
                break
        assert flipped is not None, "no commuting alternative found in any tie"
        assert flipped.signature == base.signature
        assert flipped.params_digest == base.params_digest


class TestMutationPipeline:
    def _mutated_cfg(self):
        return ExploreConfig(
            preset="ssp", max_iter=6, spread=1.0,
            mutation="weak-staleness", max_schedules=40,
        )

    def test_seeded_bug_found_minimized_and_replayable(self, tmp_path):
        report = explore(self._mutated_cfg())
        assert not report.ok
        codes = {v.code for v in report.violations}
        assert "S004" in codes
        trace = report.counterexample
        assert trace is not None
        assert "S004" in trace.violations
        assert trace.found_after_runs >= 1

        # Deterministic replay, including through JSON serialization.
        first = replay_trace(trace)
        assert first.reproduced, (first.mismatches, first.violation_codes())
        path = tmp_path / "cex.json"
        trace.save(path)
        second = replay_trace(ChoiceTrace.load(path))
        assert second.reproduced
        assert second.params_digest == first.params_digest
        assert sorted(set(second.violation_codes())) == sorted(
            set(first.violation_codes())
        )

    def test_trace_json_round_trip(self):
        trace = ChoiceTrace(
            config=ExploreConfig(preset="lazy").run_params(),
            choices=[0, 2, 1],
            chosen_labels=[["local", "f", 3]],
            violations=["S004"],
            found_after_runs=7,
        )
        doc = json.loads(trace.to_json())
        back = ChoiceTrace.from_json(json.dumps(doc))
        assert back.choices == [0, 2, 1]
        assert back.violations == ["S004"]
        assert back.found_after_runs == 7
        assert ExploreConfig.from_run_params(back.config).preset == "lazy"

    def test_unknown_trace_version_rejected(self):
        with pytest.raises(ValueError):
            ChoiceTrace.from_json(json.dumps({"version": 99, "choices": []}))

    def test_mutation_registry_and_validation(self):
        assert "weak-staleness" in MUTATIONS
        with pytest.raises(ValueError):
            ExploreConfig(preset="nope")
        with pytest.raises(ValueError):
            ExploreConfig(mutation="nope")


class TestMinimize:
    def test_minimize_drops_irrelevant_choices(self, monkeypatch):
        # `repro.analysis.__init__` rebinds the name `explore` to the
        # function, so fetch the module itself for patching.
        import sys

        ex = sys.modules["repro.analysis.explore"]

        class FakeOutcome:
            def __init__(self, codes):
                self._codes = codes

            def violation_codes(self):
                return self._codes

        calls = []

        def fake_run(cfg, prefix, expected_labels=None):
            calls.append(list(prefix))
            # The bug needs only choice #1 == 2; everything else is noise.
            fails = len(prefix) > 1 and prefix[1] == 2
            return FakeOutcome(["S004"] if fails else [])

        monkeypatch.setattr(ex, "_run_schedule", fake_run)
        best = _minimize(
            ExploreConfig(preset="ssp"), [1, 2, 3, 1, 2], {"S004"}
        )
        assert best == [0, 2]
        assert all(len(c) <= 5 for c in calls)

    def test_strip_defaults(self):
        assert _strip_defaults([0, 1, 0, 0]) == [0, 1]
        assert _strip_defaults([0, 0]) == []
