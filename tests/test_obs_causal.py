"""Causal tracing, critical-path blame, and the repro.obs CLI."""

import json

import pytest

from repro.analysis import check_causal_spans
from repro.core.models import ssp
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.obs import NULL_OBS, MetricsRegistry, Observability, observed
from repro.obs.__main__ import main as obs_main
from repro.obs.causal import (
    BLAME_ORDER,
    CATEGORIES,
    aggregate_blame,
    causal_from_trace_doc,
    folded_stacks,
    iteration_blames,
    render_blame_table,
    straggler_table,
)
from repro.obs.export import dump_trace, load_trace
from repro.sim.cluster import cpu_cluster
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.trace import SpanKind


def _config(n=3, staleness=1, max_iter=5, seed=1, obs=None, keep_spans=False):
    kwargs = dict(
        cluster=cpu_cluster(n, n_servers=2),
        max_iter=max_iter,
        sync=ssp(staleness),
        workload=alexnet_cifar_workload(),
        seed=seed,
        keep_spans=keep_spans,
    )
    if obs is not None:
        kwargs["obs"] = obs
    return SimConfig(**kwargs)


def _traced_run(**kwargs):
    obs = Observability(MetricsRegistry("causal-test"))
    with observed(obs):
        runner = FluentPSSimRunner(_config(**kwargs))
        result = runner.run()
    return obs, runner, result


class TestCausalDag:
    def test_spans_recorded_with_known_categories(self):
        obs, _, _ = _traced_run()
        spans = obs.last_run.causal.spans
        assert spans, "an observed sim run must record causal spans"
        cats = {s.category for s in spans}
        assert cats <= set(CATEGORIES)
        # Every iteration's chain reaches the network and back.
        assert {"compute", "tx_queue", "wire", "rx", "sync_wait"} <= cats

    def test_dag_passes_the_causal_checker(self):
        obs, _, _ = _traced_run()
        assert check_causal_spans(obs.last_run.causal) == []

    def test_checker_flags_bad_spans(self):
        from repro.obs.causal import CausalTrace

        tr = CausalTrace()
        a = tr.record(-1, "w0", "compute", 0.0, 2.0)
        tr.record(a, "w0", "rx", 0.0, 1.0)  # ends before its cause
        tr.record(-1, "w0", "warp", 2.0, 1.0)  # unknown category + t1 < t0
        codes = sorted(v.code for v in check_causal_spans(tr))
        assert codes == ["CS02", "CS03", "CS04"]

    def test_record_rejects_forward_parent(self):
        from repro.obs.causal import CausalTrace

        tr = CausalTrace()
        with pytest.raises(ValueError):
            tr.record(5, "w0", "compute", 0.0, 1.0)


class TestBlame:
    def test_fractions_sum_to_one_per_iteration(self):
        obs, _, _ = _traced_run()
        blames = iteration_blames(obs.last_run.causal.spans)
        assert len(blames) == 3 * 5  # every (worker, iteration)
        for b in blames:
            assert set(b.fractions) <= set(BLAME_ORDER)
            assert sum(b.fractions.values()) == pytest.approx(1.0, abs=1e-9)
            assert sum(b.seconds.values()) == pytest.approx(b.total, abs=1e-9)

    def test_aggregate_fractions_sum_to_one(self):
        obs, _, _ = _traced_run()
        agg = aggregate_blame(iteration_blames(obs.last_run.causal.spans))
        assert sum(agg.values()) == pytest.approx(1.0, abs=1e-9)

    def test_tight_staleness_produces_sync_wait_blame(self):
        # s=0 is BSP-like: every worker waits on the slowest each round,
        # so sync-wait blame must appear and name a blocking worker.
        obs, _, _ = _traced_run(staleness=0, max_iter=6)
        blames = iteration_blames(obs.last_run.causal.spans)
        agg = aggregate_blame(blames)
        assert agg.get("sync_wait", 0.0) > 0.0
        stragglers = straggler_table(blames)
        assert stragglers, "sync-wait time must be attributed to workers"
        assert all(name.startswith("worker") for name, _ in stragglers)

    def test_render_blame_table_mentions_contract(self):
        obs, _, _ = _traced_run()
        text = render_blame_table(iteration_blames(obs.last_run.causal.spans))
        assert "sum to 1.0" in text
        assert "aggregate:" in text

    def test_folded_stacks_format(self):
        obs, _, _ = _traced_run()
        lines = folded_stacks(obs.last_run.causal.spans)
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) >= 0
            assert stack.split(";")[0].startswith("worker")


class TestTimelineUnchanged:
    def test_timestamps_bit_identical_with_obs_on_and_off(self):
        def run(obs):
            runner = FluentPSSimRunner(
                _config(n=4, staleness=2, max_iter=6, seed=3, obs=obs,
                        keep_spans=True)
            )
            deliveries = []
            runner.net.on_delivery(
                lambda m: deliveries.append(
                    (m.msg_id, m.src, m.dst, repr(m.send_time), repr(m.deliver_time))
                )
            )
            result = runner.run()
            spans = [
                (s.actor, s.kind.value, repr(s.t0), repr(s.t1))
                for s in runner.trace.spans
                if s.kind in (SpanKind.COMPUTE, SpanKind.PULL)
            ]
            return repr(result.duration), deliveries, spans

        # The ambient test observability is enabled; the off-run must opt
        # out explicitly to exercise the uninstrumented path.
        off = run(NULL_OBS)
        on = run(Observability(MetricsRegistry("diff")))
        assert off == on


class TestExportRoundTrip:
    def test_trace_doc_carries_flows_and_causal_spans(self, tmp_path):
        obs, runner, _ = _traced_run()
        run = obs.last_run
        path = tmp_path / "run.trace.json"
        dump_trace(str(path), run.trace, run.instants, causal=run.causal)
        doc = load_trace(path)
        phases = {e.get("ph") for e in doc["traceEvents"]}
        assert {"s", "f"} <= phases, "flow-event arrows must be embedded"
        assert len(doc["causalSpans"]) == len(run.causal.spans)
        rebuilt = causal_from_trace_doc(doc)
        live = iteration_blames(run.causal.spans)
        offline = iteration_blames(rebuilt.spans)
        assert [(b.worker, b.iteration, b.fractions) for b in offline] == [
            (b.worker, b.iteration, b.fractions) for b in live
        ]

    def test_pull_latency_sketch_matches_trace_spans(self):
        obs, runner, _ = _traced_run()
        sketch = obs.registry.get("pull_latency_seconds")
        durations = [
            s.t1 - s.t0 for s in runner.trace.spans if s.kind is SpanKind.PULL
        ]
        merged = sketch.merged()
        assert merged.count == len(durations)
        assert merged.quantile(1.0) <= max(durations) * 1.01
        assert merged.quantile(0.5) == pytest.approx(
            sorted(durations)[len(durations) // 2], rel=0.05
        )


class TestObsCli:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        obs, _, _ = _traced_run()
        run = obs.last_run
        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "run.metrics.json"
        dump_trace(str(trace), run.trace, run.instants, causal=run.causal)
        metrics.write_text(json.dumps(obs.registry.to_dict()))
        return trace, metrics

    def test_blame_is_the_default_action(self, artifacts, capsys):
        trace, _ = artifacts
        assert obs_main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "critical-path blame" in out
        assert "sum to 1.0" in out

    def test_percentiles_merge_metrics_files(self, artifacts, capsys):
        _, metrics = artifacts
        assert obs_main(["--percentiles", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "pull_latency_seconds" in out
        assert "p99" in out

    def test_flame_prints_folded_stacks(self, artifacts, capsys):
        trace, _ = artifacts
        assert obs_main(["--flame", str(trace)]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert any(";" in line for line in out)

    def test_directory_expansion(self, artifacts, capsys):
        trace, _ = artifacts
        assert obs_main([str(trace.parent)]) == 0
        assert "critical-path blame" in capsys.readouterr().out

    def test_exit_code_when_nothing_found(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        assert obs_main([str(empty)]) == 2


class TestPooledArmArtifacts:
    @pytest.mark.no_sanitize
    def test_obs_dir_captures_per_arm_traces(self, tmp_path):
        from repro.bench.figures import _fig7_arm
        from repro.bench.harness import TINY
        from repro.bench.pool import RunTask, SweepExecutor

        arms = tmp_path / "arms"
        tasks = [
            RunTask(fn=_fig7_arm, kwargs=dict(scale=TINY, n=n, seed=7), key=f"fig7/N{n}")
            for n in (2, 4)
        ]
        with SweepExecutor(jobs=2, obs_dir=str(arms)) as pool:
            results = pool.map(tasks)
        assert len(results) == 2
        traces = sorted(p.name for p in arms.glob("*.trace.json"))
        assert traces == ["fig7_N2.trace.json", "fig7_N4.trace.json"]
        assert sorted(p.name for p in arms.glob("*.metrics.json")) == [
            "fig7_N2.metrics.json",
            "fig7_N4.metrics.json",
        ]
        doc = load_trace(arms / "fig7_N2.trace.json")
        assert doc["causalSpans"], "worker-side runs must carry causal spans"
        assert check_causal_spans(causal_from_trace_doc(doc)) == []

    def test_obs_dir_skips_cache_reads_but_still_writes(self, tmp_path):
        from repro.bench.figures import _fig7_arm
        from repro.bench.harness import TINY
        from repro.bench.pool import RunCache, RunTask, SweepExecutor

        cache = RunCache(str(tmp_path / "cache"))
        task = RunTask(fn=_fig7_arm, kwargs=dict(scale=TINY, n=2, seed=7), key="fig7/N2")
        with SweepExecutor(jobs=2, cache=cache, obs_dir=str(tmp_path / "a1")) as pool:
            pool.map([task])
            assert pool.stats.cache_hits == 0
            # The arm still landed in the cache for non-capturing sweeps.
            assert cache.get(cache.key_for(task)) is not None
        with SweepExecutor(jobs=2, cache=cache) as pool:
            pool.map([task])
            assert pool.stats.cache_hits == 1
        # Capturing again bypasses the now-warm cache (artifacts needed).
        with SweepExecutor(jobs=2, cache=cache, obs_dir=str(tmp_path / "a2")) as pool:
            pool.map([task])
            assert pool.stats.cache_hits == 0
        assert list((tmp_path / "a2").glob("*.trace.json"))
