"""Differential tests: direct server dispatch vs the inbox-loop oracle.

``server_dispatch="direct"`` hands each delivered request to the server
inside the delivery event via the endpoint sink — no inbox round-trip
and no per-request resume + timeout events.  The contract is exact
semantic equivalence with the classic one-generator-per-server inbox
loop (``server_dispatch="proc"``): a request's handle time is
``max(deliver_time, previous handle end)`` and per-server order is the
delivery FIFO, bit-identical across the two dispatchers — only the
event structure differs.  These tests run entire co-simulated training
runs on every cluster preset × sync model × compute model cell and
compare full delivery traces and trained parameters, force a congested
server through the busy-window drain path, and pin the interaction with
the calendar-queue engine backend.
"""

import json

import numpy as np
import pytest

from repro.bench.workloads import blobs_task
from repro.core.models import ssp
from repro.core.server import ExecutionMode
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.sim.cluster import cpu_cluster
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.stragglers import DeterministicCompute, LogNormalCompute

from tests.test_engine_fastforward import _preset_configs


def _run_dispatch(cfg_kwargs, dispatch, **extra):
    """One full run with a delivery trace, on the chosen dispatcher."""
    cfg = SimConfig(server_dispatch=dispatch, **extra, **cfg_kwargs)
    runner = FluentPSSimRunner(cfg)
    trace = []
    runner.net.on_delivery(
        lambda m: trace.append(
            (m.msg_id, m.src, m.dst, m.tag, m.size_bytes, m.send_time, m.deliver_time)
        )
    )
    result = runner.run()
    return trace, result, runner


class TestPresetDifferential:
    """Entire co-simulated runs on each preset: byte-identical traces."""

    @pytest.mark.parametrize("cfg_kwargs", _preset_configs())
    def test_run_traces_identical(self, cfg_kwargs):
        d_trace, d_result, d_runner = _run_dispatch(cfg_kwargs, "direct")
        p_trace, p_result, p_runner = _run_dispatch(cfg_kwargs, "proc")
        # Serialize through JSON so the comparison is on bytes, not on
        # float objects that might compare equal after rounding.
        assert json.dumps(d_trace) == json.dumps(p_trace)
        assert d_trace  # the run actually produced traffic
        assert d_result.duration == p_result.duration
        assert d_result.messages_on_wire == p_result.messages_on_wire
        assert d_result.bytes_on_wire == p_result.bytes_on_wire
        assert d_result.total_comm_time == p_result.total_comm_time
        # Every server-bound request went through the sink dispatcher,
        # and dropping the per-request resume + timeout events is
        # visible in the engine's event count.
        requests = sum(1 for t in d_trace if t[3] in ("push", "pull"))
        assert d_runner.server_msgs_inline + d_runner.server_msgs_drained == requests
        assert p_runner.server_msgs_inline == p_runner.server_msgs_drained == 0
        assert d_runner.engine.events_processed < p_runner.engine.events_processed

    def test_training_run_params_identical(self):
        """A real (non-timing-only) run under the soft barrier: DPR
        costs stretch the busy windows and the final parameters must
        still be bit-equal.  The task is built fresh per run — training
        mutates it in place."""

        def kwargs():
            return dict(
                cluster=cpu_cluster(3, n_servers=2),
                max_iter=8,
                sync=ssp(2),
                task=blobs_task(3, n_train=120, n_test=60),
                execution=ExecutionMode.SOFT_BARRIER,
                compute_model=LogNormalCompute(0.2),
                seed=11,
            )

        _, d_result, _ = _run_dispatch(kwargs(), "direct")
        _, p_result, _ = _run_dispatch(kwargs(), "proc")
        assert d_result.final_params is not None
        assert np.array_equal(d_result.final_params, p_result.final_params)
        assert d_result.duration == p_result.duration


class TestBusyWindowDrain:
    """Congested servers: arrivals inside the busy window park and drain."""

    def _kwargs(self):
        return dict(
            cluster=cpu_cluster(6, n_servers=2),
            max_iter=4,
            sync=ssp(2),
            workload=alexnet_cifar_workload(),
            batch_per_worker=64,
            compute_model=DeterministicCompute(),
            seed=5,
            # A busy window far wider than the inter-arrival spacing:
            # every incast burst after the first request parks.
            server_op_overhead_s=0.05,
        )

    def test_drain_path_matches_proc(self):
        # The event drain is the sequential oracle here: lane mode issues
        # replies from cascaded handle times (identical timestamps, but a
        # different msg-id allocation order once requests park), and its
        # own differential suite lives in tests/test_server_drain.py.
        d_trace, d_result, d_runner = _run_dispatch(
            self._kwargs(), "direct", server_drain="event"
        )
        p_trace, p_result, _ = _run_dispatch(self._kwargs(), "proc")
        assert d_runner.server_msgs_drained > 0  # the drain path actually ran
        assert json.dumps(d_trace) == json.dumps(p_trace)
        assert d_result.duration == p_result.duration

    def test_drain_path_under_calendar_engine(self):
        """Drain events are scheduled mid-run and must merge correctly
        with the calendar window (a near-zero threshold forces sweeps
        even at 6-worker scale)."""
        d_trace, d_result, d_runner = _run_dispatch(
            self._kwargs(), "direct", server_drain="event", engine_calendar_threshold=4
        )
        p_trace, p_result, _ = _run_dispatch(self._kwargs(), "proc", engine_calendar=False)
        assert d_runner.engine.calendar_sweeps > 0
        assert d_runner.server_msgs_drained > 0
        assert json.dumps(d_trace) == json.dumps(p_trace)
        assert d_result.duration == p_result.duration


class TestConfigAndHousekeeping:
    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ValueError, match="server_dispatch"):
            SimConfig(
                cluster=cpu_cluster(2, n_servers=1),
                max_iter=1,
                sync=ssp(1),
                workload=alexnet_cifar_workload(),
                server_dispatch="inline",
            )

    @pytest.mark.parametrize("dispatch", ["direct", "proc"])
    def test_no_messages_pinned_in_inboxes(self, dispatch):
        """Neither dispatcher leaves delivered messages rotting in an
        unread inbox (replies skip the append; direct mode consumes
        server requests in the sink) — at 10k workers a pinned reply
        keeps its COW parameter snapshot alive too."""
        cfg_kwargs = dict(
            cluster=cpu_cluster(4, n_servers=2),
            max_iter=3,
            sync=ssp(2),
            workload=alexnet_cifar_workload(),
            compute_model=DeterministicCompute(),
            seed=2,
        )
        _, _, runner = _run_dispatch(cfg_kwargs, dispatch)
        for ep in runner.net.endpoints.values():
            assert len(ep.inbox) == 0, f"{ep.node_id} pinned {len(ep.inbox)} messages"
