"""Smoke + shape tests for the experiment functions at a tiny scale.

The benchmarks run these at QUICK/PAPER scale with the paper's shape
assertions; here a TINY scale keeps `pytest tests/` self-contained and
checks structure (records, series, headers) plus the cheapest invariants.
"""

import pytest

from repro.bench.ablations import (
    ablation_eps_chunks,
    ablation_per_shard_models,
    ablation_push_filters,
    ablation_stragglers,
)
from repro.bench.figures import (
    fig1_pmls_scaling,
    fig3_tradeoff_trace,
    fig5_timeline,
    fig6_overlap,
    fig7_scalability,
    fig8_lazy_vs_soft,
    fig9_dpr_pairs,
    fig10_models,
)
from repro.bench.harness import TINY
from repro.bench.scale_grid import (
    GRID_PRESETS,
    GRID_SYNCS,
    grid_worker_counts,
    scale_grid,
)
from repro.bench.tables import table1_model_matrix, table3_conditions, table4_grid
from repro.bench.theory_bench import theory_bounds


class TestFigureFunctions:
    def test_fig1_structure(self):
        r = fig1_pmls_scaling(TINY)
        assert len(r.rows) == len(TINY.worker_counts)
        assert len(r.series) == len(TINY.worker_counts)

    def test_fig3_exact(self):
        r = fig3_tradeoff_trace()
        assert r.find("soft").metrics["missing"] == 3
        assert r.find("lazy").metrics["missing"] == 0

    def test_fig5_overlap_never_slower(self):
        r = fig5_timeline(TINY)
        assert (
            r.find("fluentps-overlap").metrics["duration"]
            <= r.find("pslite-nonoverlap").metrics["duration"]
        )

    def test_fig6_rows_per_system(self):
        r = fig6_overlap(TINY)
        systems = {row[1] for row in r.rows}
        assert systems == {"pslite", "fluentps", "fluentps+eps"}

    def test_fig7_rows(self):
        r = fig7_scalability(TINY)
        assert len(r.rows) == len(TINY.worker_counts)
        for row in r.rows:
            assert 0.0 <= row[1] <= 1.0 and 0.0 <= row[2] <= 1.0

    def test_fig8_both_modes(self):
        r = fig8_lazy_vs_soft(TINY)
        assert {rec.name for rec in r.records} == {"soft", "lazy"}
        assert len(r.series) == 2

    def test_fig9_groups(self):
        r = fig9_dpr_pairs(TINY, n_workers=6)
        names = {rec.name for rec in r.records}
        assert {"A/B_soft", "G/H_lazy"} <= names

    def test_fig10_all_models(self):
        r = fig10_models(TINY, n_workers=4)
        assert len(r.records) == 6
        assert r.find("asp").metrics["dprs_per_100"] == 0


class TestTableFunctions:
    def test_table1(self):
        r = table1_model_matrix()
        assert len(r.rows) == 8

    def test_table3(self):
        r = table3_conditions(TINY)
        assert r.find("bsp").metrics["max_staleness"] == 0
        assert r.find("asp").metrics["dprs"] == 0

    def test_table4_single_row(self):
        r = table4_grid(TINY, workloads=["alexnet-cifar10"])
        assert len(r.rows) == 12  # 2 executions x 6 P values
        assert r.find("alexnet-cifar10_soft_P0.0").metrics["dprs_per_100"] == 0

    def test_theory(self):
        r = theory_bounds(TINY)
        for rec in r.records:
            assert rec.metrics["series"] <= rec.metrics["bound"] * (1 + 1e-9)


class TestAblationFunctions:
    def test_stragglers(self):
        r = ablation_stragglers(TINY)
        assert any("pareto" in rec.name for rec in r.records)

    def test_eps_chunks(self):
        r = ablation_eps_chunks(TINY)
        assert r.records[-1].metrics["imbalance8"] <= r.records[0].metrics["imbalance8"]

    def test_per_shard(self):
        r = ablation_per_shard_models(TINY)
        assert len(r.records) == 2

    def test_filters(self):
        r = ablation_push_filters(TINY)
        none = r.find("none")
        for rec in r.records:
            assert rec.metrics["wire_bytes"] <= none.metrics["wire_bytes"] * 1.001

    def test_specsync(self):
        from repro.bench.ablations import ablation_specsync

        r = ablation_specsync(TINY)
        assert r.find("pssp(3,0.3)").metrics["aborts"] == 0
        assert r.find("specsync").metrics["duration"] > 0

    def test_scale_grid_structure(self):
        r = scale_grid(TINY)
        counts = grid_worker_counts(TINY)
        n_cells = len(GRID_PRESETS) * len(counts) * len(GRID_SYNCS)
        assert len(r.rows) == n_cells
        assert len(r.records) == n_cells
        for preset in GRID_PRESETS:
            for n in counts:
                for sync in GRID_SYNCS:
                    rec = r.find(f"scale-grid/{preset}/N{n}/{sync}")
                    assert rec.metrics["wall_s"] > 0
                    assert rec.metrics["events"] > 0
                    assert rec.metrics["sim_s_per_iter"] > 0
                    # Elision / memory columns are present in every cell
                    # (counter values are population-dependent).
                    assert rec.metrics["events_elided"] >= 0
                    assert rec.metrics["quiet_regions"] >= 0
                    assert rec.metrics["pending_event_hwm"] > 0
                    assert rec.metrics["peak_rss_mb"] > 0
        # Barrier pressure is visible in the grid: at the largest N, BSP
        # issues at least as many DPRs as PSSP on every topology (the
        # sim-time ordering itself is a scaling claim, only stable at
        # quick/paper worker counts).
        n = max(counts)
        for preset in GRID_PRESETS:
            bsp_cell = r.find(f"scale-grid/{preset}/N{n}/bsp").metrics
            pssp_cell = r.find(f"scale-grid/{preset}/N{n}/pssp").metrics
            assert bsp_cell["dprs"] >= pssp_cell["dprs"]


class TestCli:
    def test_list_and_run(self, capsys, tmp_path, monkeypatch):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table4" in out

        assert main(["--only", "fig3", "--save-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert list(tmp_path.glob("*.json"))

    def test_unknown_id_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", "fig99"])
