"""Adversarial tests for the protocol sanitizer: corrupted event streams.

Each test hand-builds an event stream with one seeded protocol violation
and asserts the sanitizer pinpoints it with the right code; the clean
variants assert zero false positives, and the round-trip tests feed real
runs (live captures and dumped Perfetto traces) through the checker.
"""

import json

import pytest

from repro.analysis import (
    ProtocolEvent,
    ProtocolViolation,
    events_from_trace_doc,
    events_from_trace_file,
    sanitize_events,
    sanitize_observability,
    sanitize_run,
)

pytestmark = pytest.mark.no_sanitize  # these streams are corrupt on purpose


class StreamBuilder:
    """Builds synthetic protocol event streams for one server (uid 0)."""

    def __init__(self, n_workers=3, execution="lazy", pull_kind="ssp",
                 s=2.0, quorum=None):
        self.events = []
        self.n_workers = n_workers
        self.s = s
        self.add(
            "server_config", n_workers=n_workers, execution=execution,
            pull_kind=pull_kind, s=s, quorum=quorum or n_workers,
            model="ssp", v_train=0, worker_progress=[-1] * n_workers,
            count={},
        )

    def add(self, name, **args):
        args.setdefault("uid", 0)
        args.setdefault("shard", 0)
        self.events.append(
            ProtocolEvent(
                index=len(self.events), name=name, t=float(len(self.events)),
                actor="server0", args=args,
            )
        )
        return self

    def push(self, worker, progress, v_train=0):
        return self.add("push", worker=worker, progress=progress, v_train=v_train)

    def pull_request(self, worker, progress):
        return self.add("pull_request", worker=worker, progress=progress)

    def answer(self, worker, progress, v_train, missing=None, released=False,
               coin=False, kind="ssp", s=None, version=None, snap=None):
        if missing is None:
            missing = max(0, progress + 1 - v_train)
        return self.add(
            "pull_answer", worker=worker, progress=progress, v_train=v_train,
            missing=missing, released=released, coin=coin, kind=kind,
            s=self.s if s is None else s, version=version, snap=snap,
        )

    def pssp_pass(self, worker, progress, v_train=0):
        return self.add("pssp_pass", worker=worker, progress=progress, v_train=v_train)

    def advance(self, v_train):
        return self.add("frontier_advance", v_train=v_train)

    def round(self, iteration, v_after):
        """One full BSP-style round: all workers push + pull + answer."""
        for w in range(self.n_workers):
            self.push(w, iteration, v_train=v_after - 1)
        self.advance(v_after)
        for w in range(self.n_workers):
            self.pull_request(w, iteration)
            self.answer(w, iteration, v_train=v_after)
        return self

    def codes(self, complete=True):
        return [v.code for v in sanitize_events(self.events, complete=complete).violations]


class TestCleanStreams:
    def test_full_round_is_clean(self):
        b = StreamBuilder().round(0, 1).round(1, 2)
        assert b.codes() == []

    def test_incomplete_stream_skips_liveness(self):
        b = StreamBuilder()
        b.push(0, 0).pull_request(0, 0)  # legitimately still unanswered
        assert b.codes(complete=False) == []

    def test_buffered_then_released_is_clean(self):
        b = StreamBuilder(s=0.0)
        b.push(0, 0).pull_request(0, 0)
        b.add("dpr_buffered", worker=0, progress=0, v_train=0, s=0.0)
        for w in (1, 2):
            b.push(w, 0)
        b.advance(1)
        b.add("dpr_released", worker=0, progress=0, v_train=1)
        b.answer(0, 0, v_train=1, released=True, s=0.0)
        assert b.codes() == []


class TestSeededViolations:
    def test_reordered_push_flagged(self):
        b = StreamBuilder()
        b.push(0, 0).push(0, 2)  # skipped iteration 1
        assert "S001" in b.codes(complete=False)

    def test_duplicate_push_flagged(self):
        b = StreamBuilder()
        b.push(0, 0).push(0, 0)
        assert "S001" in b.codes(complete=False)

    def test_nonmonotone_frontier_flagged(self):
        b = StreamBuilder().round(0, 1)
        b.advance(3)  # jumps 1 -> 3
        codes = b.codes(complete=False)
        assert "S002" in codes

    def test_frontier_overrun_flagged(self):
        b = StreamBuilder()  # quorum 3
        b.push(0, 0).push(1, 0)
        b.advance(1)  # only 2/3 pushes for iteration 0
        assert "S003" in b.codes(complete=False)

    def test_stale_answer_beyond_s_flagged(self):
        b = StreamBuilder(s=2.0).round(0, 1)
        b.push(0, 1, v_train=1).push(0, 2, v_train=1).push(0, 3, v_train=1)
        b.pull_request(0, 3)
        # missing = 3+1-1 = 3 >= s+1: the server should have buffered this.
        b.answer(0, 3, v_train=1)
        assert "S004" in b.codes(complete=False)

    def test_pssp_coin_pass_exempt_from_bound(self):
        b = StreamBuilder(pull_kind="pssp", s=2.0).round(0, 1)
        b.push(0, 1, v_train=1).push(0, 2, v_train=1).push(0, 3, v_train=1)
        b.pull_request(0, 3)
        b.pssp_pass(0, 3, v_train=1)
        b.answer(0, 3, v_train=1, coin=True)  # probabilistic pass: legal
        codes = b.codes(complete=False)
        assert "S004" not in codes and "S015" not in codes

    def test_forged_coin_answer_flagged(self):
        # coin=True without a recorded pssp_pass: the exemption is forged.
        b = StreamBuilder(pull_kind="pssp", s=2.0).round(0, 1)
        b.push(0, 1, v_train=1).push(0, 2, v_train=1).push(0, 3, v_train=1)
        b.pull_request(0, 3)
        b.answer(0, 3, v_train=1, coin=True)
        assert "S015" in b.codes(complete=False)

    def test_coin_pass_consumed_once(self):
        # One pssp_pass cannot justify two coin answers at the same key.
        b = StreamBuilder(pull_kind="pssp", s=2.0).round(0, 1)
        b.push(0, 1, v_train=1).push(0, 2, v_train=1).push(0, 3, v_train=1)
        b.pull_request(0, 3).pull_request(0, 3)
        b.pssp_pass(0, 3, v_train=1)
        b.answer(0, 3, v_train=1, coin=True)
        b.answer(0, 3, v_train=1, coin=True)
        assert b.codes(complete=False).count("S015") == 1

    def test_lazy_release_with_missing_flagged(self):
        b = StreamBuilder(s=0.0)
        b.push(0, 0).pull_request(0, 0)
        b.add("dpr_buffered", worker=0, progress=0, v_train=0, s=0.0)
        b.push(1, 0).push(2, 0)
        b.advance(1)
        b.push(1, 1, v_train=1).pull_request(1, 1)
        b.add("dpr_released", worker=0, progress=0, v_train=1)
        # Lazy guarantees missing == 0 on release; report 1 (and a matching
        # v_train lie so only the lazy rule can fire).
        b.answer(0, 0, v_train=1, missing=1, released=True, s=0.0)
        codes = b.codes(complete=False)
        assert "S005" in codes and "S004" in codes

    def test_answer_before_push_flagged(self):
        b = StreamBuilder()
        b.pull_request(0, 0)
        b.answer(0, 0, v_train=0)  # worker 0 never pushed iteration 0
        assert "S006" in b.codes(complete=False)

    def test_unmatched_answer_flagged(self):
        b = StreamBuilder()
        b.push(0, 0)
        b.answer(0, 0, v_train=0)  # no pull_request outstanding
        assert "S007" in b.codes(complete=False)

    def test_double_answer_flagged(self):
        b = StreamBuilder().round(0, 1)
        b.answer(0, 0, v_train=1)  # second answer for the same pull
        assert "S007" in b.codes(complete=False)

    def test_vtrain_mismatch_flagged(self):
        b = StreamBuilder()
        b.push(0, 0).pull_request(0, 0)
        b.answer(0, 0, v_train=1)  # frontier never advanced
        assert "S008" in b.codes(complete=False)

    def test_missing_mismatch_flagged(self):
        b = StreamBuilder().round(0, 1)
        b.push(0, 1, v_train=1).pull_request(0, 1)
        b.answer(0, 1, v_train=1, missing=0)  # really 1+1-1 = 1
        assert "S009" in b.codes(complete=False)

    def test_spurious_block_flagged(self):
        b = StreamBuilder(s=2.0)
        b.push(0, 0).pull_request(0, 0)
        # progress 0 < v_train 0 + s 2: the condition held, no DPR allowed.
        b.add("dpr_buffered", worker=0, progress=0, v_train=0, s=2.0)
        assert "S010" in b.codes(complete=False)

    def test_starved_dpr_flagged_only_when_complete(self):
        b = StreamBuilder(s=0.0)
        b.push(0, 0).pull_request(0, 0)
        b.add("dpr_buffered", worker=0, progress=0, v_train=0, s=0.0)
        assert "S011" in b.codes(complete=True)
        assert b.codes(complete=False) == []

    def test_lost_wakeup_flagged(self):
        b = StreamBuilder().round(0, 1)
        b.push(0, 1, v_train=1).pull_request(0, 1)
        # Never buffered, never answered: the wakeup was dropped.
        assert "S012" in b.codes(complete=True)

    def test_restore_while_outstanding_flagged(self):
        b = StreamBuilder()
        b.push(0, 0).pull_request(0, 0)
        b.add(
            "server_restore", v_train=0, worker_progress=[-1, -1, -1], count={}
        )
        assert "S013" in b.codes(complete=False)

    def test_pull_regression_flagged(self):
        b = StreamBuilder().round(0, 1).round(1, 2)
        b.pull_request(0, 0)
        b.answer(0, 0, v_train=2)
        assert "S014" in b.codes(complete=False)


class TestSnapshotSharing:
    """S016: the COW snapshot's version <-> storage-tag bijection."""

    def _two_answers(self, snap1, snap2, version1=3, version2=3):
        b = StreamBuilder()
        for w in range(3):
            b.push(w, 0)
        b.advance(1)
        b.pull_request(0, 0).answer(0, 0, v_train=1, version=version1, snap=snap1)
        b.pull_request(1, 0).answer(1, 0, v_train=1, version=version2, snap=snap2)
        return b

    def test_shared_same_version_clean(self):
        assert self._two_answers(snap1=1, snap2=1).codes(complete=False) == []

    def test_unshared_same_version_flagged(self):
        # Two replies at version 3 carried two different copies: the cache
        # failed to share (the 128-pulls-1-copy property is broken).
        codes = self._two_answers(snap1=1, snap2=2).codes(complete=False)
        assert "S016" in codes

    def test_stale_snapshot_reuse_flagged(self):
        # Same copy served two different versions: a push advanced the
        # version but the cached snapshot was not invalidated.
        codes = self._two_answers(
            snap1=1, snap2=1, version1=3, version2=4
        ).codes(complete=False)
        assert "S016" in codes

    def test_snapshotting_disabled_skips_check(self):
        # snap=None (snapshot_params=False or param-less shard): no claim
        # about storage is made, so nothing to verify.
        codes = self._two_answers(
            snap1=None, snap2=None, version1=3, version2=4
        ).codes(complete=False)
        assert "S016" not in codes

    def test_restore_resets_bijection(self):
        # A restore may reinstate version 3 backed by a fresh copy; the
        # pre-restore pairing must not count against it.
        b = StreamBuilder()
        for w in range(3):
            b.push(w, 0)
        b.advance(1)
        b.pull_request(0, 0).answer(0, 0, v_train=1, version=3, snap=1)
        b.add(
            "server_restore", v_train=1, worker_progress=[0, 0, 0],
            count={"0": 3},
        )
        b.push(0, 1, v_train=1)
        b.pull_request(0, 1).answer(0, 1, v_train=1, version=3, snap=2)
        assert "S016" not in b.codes(complete=False)


class TestReporting:
    def test_violation_carries_event_window(self):
        b = StreamBuilder().round(0, 1)
        b.push(0, 2)  # skipped 1
        report = sanitize_events(b.events, complete=False)
        assert not report.ok
        with pytest.raises(ProtocolViolation) as exc:
            report.raise_if_violations()
        assert exc.value.violations[0].code == "S001"
        assert len(exc.value.window) > 0
        assert "S001" in str(exc.value)

    def test_report_describe_mentions_counts(self):
        b = StreamBuilder().round(0, 1)
        report = sanitize_events(b.events)
        assert "clean" in report.describe()
        assert report.n_shards == 1


class TestRealRunRoundTrip:
    def _run(self, obs, sync=None, execution=None, iters=8):
        from repro.bench.workloads import blobs_task
        from repro.core.models import ssp
        from repro.core.server import ExecutionMode
        from repro.sim.cluster import cpu_cluster
        from repro.sim.runner import SimConfig, run_fluentps

        task = blobs_task(3, n_train=200, n_test=60, seed=5)
        return run_fluentps(
            SimConfig(
                cluster=cpu_cluster(3, 2), max_iter=iters,
                sync=sync or ssp(2),
                execution=execution or ExecutionMode.LAZY,
                task=task, seed=1, base_compute_time=0.4, obs=obs,
            )
        )

    def test_live_capture_is_clean(self):
        from repro.obs import MetricsRegistry, Observability

        obs = Observability(MetricsRegistry("t"))
        self._run(obs)
        assert obs.last_run.complete
        report = sanitize_run(obs.last_run)
        assert report.ok, report.describe()
        assert report.n_events > 0
        assert sanitize_observability(obs).ok

    def test_dumped_trace_round_trip_is_clean(self, tmp_path):
        from repro.obs import MetricsRegistry, Observability, dump_trace

        obs = Observability(MetricsRegistry("t"))
        self._run(obs)
        cap = obs.last_run
        path = tmp_path / "trace.json"
        dump_trace(path, cap.trace, cap.instants)
        events = events_from_trace_file(path)
        assert events, "dumped trace lost the protocol instants"
        report = sanitize_events(events, complete=True)
        assert report.ok, report.describe()

    def test_corrupting_dumped_trace_is_detected(self, tmp_path):
        from repro.obs import MetricsRegistry, Observability, dump_trace

        obs = Observability(MetricsRegistry("t"))
        self._run(obs)
        cap = obs.last_run
        path = tmp_path / "trace.json"
        dump_trace(path, cap.trace, cap.instants)
        doc = json.loads(path.read_text())
        pushes = [
            e for e in doc["traceEvents"]
            if e.get("ph") == "i" and e.get("name") == "push"
        ]
        assert len(pushes) >= 2
        # Swap two consecutive pushes of one worker on one shard: breaks
        # the per-worker sequential push order.
        w, uid = pushes[0]["args"]["worker"], pushes[0]["args"]["uid"]
        mine = [
            e for e in pushes
            if e["args"]["worker"] == w and e["args"]["uid"] == uid
        ]
        assert len(mine) >= 2 and mine[0]["args"]["progress"] != mine[1]["args"]["progress"]
        mine[0]["args"]["progress"], mine[1]["args"]["progress"] = (
            mine[1]["args"]["progress"], mine[0]["args"]["progress"],
        )
        report = sanitize_events(events_from_trace_doc(doc), complete=False)
        assert any(v.code == "S001" for v in report.violations)
