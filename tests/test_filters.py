"""Tests for push filters (Gaia significance, top-k, random sparsifier)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filters import (
    FilterResult,
    NoFilter,
    PushFilter,
    RandomSparsifier,
    SignificanceFilter,
    TopKFilter,
)
from repro.utils.rng import derive_rng


class TestFilterResult:
    def test_validation(self):
        with pytest.raises(ValueError):
            FilterResult(np.zeros(1), sent_fraction=1.5, wire_bytes_factor=1.0)
        with pytest.raises(ValueError):
            FilterResult(np.zeros(1), sent_fraction=0.5, wire_bytes_factor=-1.0)


class TestNoFilter:
    def test_identity(self, rng):
        u = rng.normal(size=10)
        r = NoFilter().apply(u, None, 0)
        np.testing.assert_array_equal(r.update, u)
        assert r.wire_bytes_factor == 1.0


class TestSignificanceFilter:
    def test_significant_elements_pass(self):
        f = SignificanceFilter(threshold=0.01)
        params = np.ones(4)
        u = np.array([0.5, 0.001, 0.5, 0.001])
        r = f.apply(u, params, 0)
        np.testing.assert_array_equal(r.update, [0.5, 0.0, 0.5, 0.0])
        assert r.sent_fraction == 0.5

    def test_residual_accumulates_until_significant(self):
        f = SignificanceFilter(threshold=0.01)
        params = np.ones(1)
        sent_total = 0.0
        for _ in range(3):
            r = f.apply(np.array([0.004]), params, 0)
            sent_total += float(r.update[0])
        # 0.004 * 3 = 0.012 >= 0.01: released on the third push.
        assert sent_total == pytest.approx(0.012)
        assert f.residual[0] == pytest.approx(0.0)

    def test_conservation_invariant(self, rng):
        """sum(sent) + residual == sum(raw updates), always."""
        f = SignificanceFilter(threshold=0.05)
        params = rng.normal(size=32)
        total_raw = np.zeros(32)
        total_sent = np.zeros(32)
        for i in range(50):
            u = 0.01 * rng.normal(size=32)
            total_raw += u
            total_sent += f.apply(u, params, i).update
        np.testing.assert_allclose(total_sent + f.residual, total_raw, atol=1e-12)

    def test_suppression_counters(self, rng):
        f = SignificanceFilter(threshold=1e9)  # suppress everything
        f.apply(rng.normal(size=8), np.ones(8), 0)
        assert f.total_suppressed == 8
        assert f.total_elements == 8

    def test_zero_threshold_sends_everything(self, rng):
        f = SignificanceFilter(threshold=0.0)
        u = rng.normal(size=8)
        r = f.apply(u, np.ones(8), 0)
        assert r.sent_fraction == 1.0

    def test_none_params_uses_floor(self, rng):
        f = SignificanceFilter(threshold=0.5, floor=1.0)
        r = f.apply(np.array([0.6, 0.2]), None, 0)
        assert r.sent_fraction == 0.5

    def test_shape_change_rejected(self, rng):
        f = SignificanceFilter()
        f.apply(np.zeros(4), None, 0)
        with pytest.raises(ValueError):
            f.apply(np.zeros(5), None, 1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SignificanceFilter(threshold=-1)
        with pytest.raises(ValueError):
            SignificanceFilter(floor=0)


class TestTopKFilter:
    def test_keeps_largest(self):
        f = TopKFilter(fraction=0.25)
        u = np.array([0.1, -5.0, 0.2, 0.3])
        r = f.apply(u, None, 0)
        np.testing.assert_array_equal(r.update, [0.0, -5.0, 0.0, 0.0])

    def test_conservation(self, rng):
        f = TopKFilter(fraction=0.2)
        total_raw = np.zeros(40)
        total_sent = np.zeros(40)
        for i in range(30):
            u = rng.normal(size=40)
            total_raw += u
            total_sent += f.apply(u, None, i).update
        np.testing.assert_allclose(total_sent + f.residual, total_raw, atol=1e-10)

    def test_fraction_one_is_identity(self, rng):
        f = TopKFilter(fraction=1.0)
        u = rng.normal(size=8)
        r = f.apply(u, None, 0)
        np.testing.assert_array_equal(r.update, u)
        assert r.wire_bytes_factor == 1.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TopKFilter(0.0)


class TestRandomSparsifier:
    def test_unbiased_in_expectation(self):
        rng = derive_rng(0, "sparse")
        f = RandomSparsifier(0.25, rng)
        u = np.ones(20_000)
        r = f.apply(u, None, 0)
        assert r.update.mean() == pytest.approx(1.0, abs=0.05)
        assert r.sent_fraction == pytest.approx(0.25, abs=0.02)

    def test_p_one_identity(self, rng):
        f = RandomSparsifier(1.0, rng)
        u = rng.normal(size=8)
        np.testing.assert_array_equal(f.apply(u, None, 0).update, u)

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            RandomSparsifier(0.0, rng)


class TestWireFactor:
    def test_sparse_encoding_break_even(self):
        """Below 50% density the sparse wire factor applies; above it the
        dense encoding wins and the factor caps at 1."""
        dense_mask = np.ones(10, dtype=bool)
        sparse_mask = np.zeros(10, dtype=bool)
        sparse_mask[:2] = True
        assert PushFilter._result(np.zeros(10), dense_mask).wire_bytes_factor == 1.0
        assert PushFilter._result(np.zeros(10), sparse_mask).wire_bytes_factor == pytest.approx(0.4)

    @given(frac=st.floats(min_value=0.01, max_value=1.0), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_topk_conservation_property(self, frac, seed):
        rng = np.random.default_rng(seed)
        f = TopKFilter(fraction=frac)
        total_raw = np.zeros(17)
        total_sent = np.zeros(17)
        for i in range(10):
            u = rng.normal(size=17)
            total_raw += u
            total_sent += f.apply(u, None, i).update
        np.testing.assert_allclose(total_sent + f.residual, total_raw, atol=1e-9)
