"""Tests for the regret-bound theory module."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pssp import equivalent_ssp_threshold, sample_effective_staleness
from repro.theory.regret import (
    RegretConditions,
    constant_pssp_regret_bound,
    constant_pssp_regret_series,
    dynamic_pssp_regret_bound,
    empirical_regret,
    matched_pair,
    sgd_regret_experiment,
    ssp_regret_bound,
)


class TestClosedForms:
    def test_ssp_bound_formula(self):
        # 4FL sqrt(2(s+1)N/T)
        assert ssp_regret_bound(3, 16, 1000) == pytest.approx(
            4 * math.sqrt(2 * 4 * 16 / 1000)
        )

    def test_bound_decreases_in_T(self):
        assert ssp_regret_bound(3, 16, 10_000) < ssp_regret_bound(3, 16, 1000)

    def test_bound_increases_in_s_and_N(self):
        assert ssp_regret_bound(5, 16, 1000) > ssp_regret_bound(3, 16, 1000)
        assert ssp_regret_bound(3, 32, 1000) > ssp_regret_bound(3, 16, 1000)

    def test_theorem1_equals_matched_ssp(self):
        for s, c in [(3, 0.5), (3, 0.1), (1, 0.25), (0, 1.0)]:
            s_prime = equivalent_ssp_threshold(s, c)
            assert constant_pssp_regret_bound(s, c, 16, 1000) == pytest.approx(
                ssp_regret_bound(s_prime, 16, 1000)
            )

    def test_c_equals_one_is_ssp(self):
        assert constant_pssp_regret_bound(3, 1.0, 16, 1000) == pytest.approx(
            ssp_regret_bound(3, 16, 1000)
        )

    def test_theorem2_dynamic_equals_half_alpha(self):
        assert dynamic_pssp_regret_bound(3, 0.6, 16, 1000) == pytest.approx(
            constant_pssp_regret_bound(3, 0.3, 16, 1000)
        )

    def test_conditions_scale_linearly(self):
        base = ssp_regret_bound(3, 16, 1000)
        doubled = ssp_regret_bound(3, 16, 1000, RegretConditions(F=2.0, L=1.0))
        assert doubled == pytest.approx(2 * base)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            ssp_regret_bound(-1, 16, 1000)
        with pytest.raises(ValueError):
            ssp_regret_bound(3, 0, 1000)
        with pytest.raises(ValueError):
            constant_pssp_regret_bound(3, 0.0, 16, 1000)
        with pytest.raises(ValueError):
            dynamic_pssp_regret_bound(3, 1.5, 16, 1000)
        with pytest.raises(ValueError):
            RegretConditions(F=0.0)

    def test_matched_pair(self):
        s_prime, factor = matched_pair(3, 0.5)
        assert s_prime == pytest.approx(4.0)
        assert factor == pytest.approx(math.sqrt(5.0))


class TestSeriesVsBound:
    @given(
        s=st.integers(min_value=0, max_value=8),
        c=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_series_never_exceeds_bound(self, s, c):
        """Equation 2 (exact mixture) <= Equation 3 (Cauchy-Schwarz bound)."""
        series = constant_pssp_regret_series(s, c, 16, 1000)
        bound = constant_pssp_regret_bound(s, c, 16, 1000)
        assert series <= bound * (1 + 1e-9)

    def test_series_approaches_ssp_at_c1(self):
        assert constant_pssp_regret_series(3, 1.0, 16, 1000) == pytest.approx(
            ssp_regret_bound(3, 16, 1000)
        )


class TestEmpirical:
    def test_empirical_regret(self):
        assert empirical_regret(np.array([2.0, 4.0]), optimum=1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            empirical_regret(np.array([]), 0.0)

    def test_more_staleness_more_regret(self):
        """Monte-Carlo: higher fixed staleness yields higher regret on the
        quadratic — the monotonicity the bounds encode."""
        fresh = sgd_regret_experiment(lambda rng: 0, T=2500, seed=1)
        stale = sgd_regret_experiment(lambda rng: 15, T=2500, seed=1)
        assert stale > fresh

    def test_pssp_staleness_regret_between_ssp_endpoints(self):
        """PSSP(s, c) effective staleness sits between SSP(s) and heavy
        staleness; its regret should too."""
        fresh = sgd_regret_experiment(lambda rng: 0, T=2500, seed=2)
        big = sgd_regret_experiment(lambda rng: 40, T=2500, seed=2)
        pssp_mid = sgd_regret_experiment(
            lambda rng: int(sample_effective_staleness(3, 0.3, rng, 1)[0]),
            T=2500, seed=2,
        )
        # Mild probabilistic staleness stays in the stable regime (within
        # noise of fresh SGD); heavy fixed staleness destabilizes SGD.
        assert pssp_mid <= 2 * fresh
        assert pssp_mid < big

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            sgd_regret_experiment(lambda rng: -1, T=10)
