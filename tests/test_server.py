"""Tests for the FluentPS shard server (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.models import asp, bsp, drop_stragglers, dynamic_pssp, pssp, ssp
from repro.core.server import (
    ApplyInfo,
    ExecutionMode,
    ProtocolError,
    PullReply,
    ShardServer,
)


def make_server(model=None, execution=ExecutionMode.LAZY, n=3, params=None, **kw):
    return ShardServer(
        shard_id=0,
        n_workers=n,
        model=model or ssp(2),
        execution=execution,
        params=params,
        **kw,
    )


class TestPushSemantics:
    def test_frontier_advances_when_all_pushed(self):
        srv = make_server(n=3)
        for w in range(3):
            srv.handle_push(w, 0)
        assert srv.v_train == 1

    def test_frontier_waits_for_last_worker(self):
        srv = make_server(n=3)
        srv.handle_push(0, 0)
        srv.handle_push(1, 0)
        assert srv.v_train == 0

    def test_frontier_cascades(self):
        srv = make_server(model=ssp(5), n=2)
        # Worker 0 pushes ahead while worker 1 lags; worker 1's pushes then
        # cascade the frontier.
        for i in range(3):
            srv.handle_push(0, i)
        assert srv.v_train == 0
        for i in range(3):
            srv.handle_push(1, i)
        assert srv.v_train == 3

    def test_out_of_order_push_rejected(self):
        srv = make_server()
        srv.handle_push(0, 0)
        with pytest.raises(ProtocolError, match="sequential"):
            srv.handle_push(0, 2)

    def test_duplicate_push_rejected(self):
        srv = make_server()
        srv.handle_push(0, 0)
        with pytest.raises(ProtocolError):
            srv.handle_push(0, 0)

    def test_bad_worker_id(self):
        srv = make_server(n=3)
        with pytest.raises(ProtocolError):
            srv.handle_push(3, 0)

    def test_gradient_applied_mean(self):
        params = np.zeros(4)
        srv = make_server(n=2, params=params)
        srv.handle_push(0, 0, grad=np.ones(4))
        srv.handle_push(1, 0, grad=np.ones(4))
        np.testing.assert_allclose(srv.params, np.ones(4))  # 1/2 + 1/2

    def test_gradient_shape_checked(self):
        srv = make_server(params=np.zeros(4))
        with pytest.raises(ProtocolError, match="shape"):
            srv.handle_push(0, 0, grad=np.ones(5))

    def test_custom_apply_fn(self):
        calls = []

        def apply(params, grad, info: ApplyInfo):
            calls.append((info.worker, info.progress))
            params += grad

        srv = make_server(params=np.zeros(2), apply_fn=apply, n=1)
        srv.handle_push(0, 0, grad=np.ones(2))
        assert calls == [(0, 0)]
        np.testing.assert_array_equal(srv.params, np.ones(2))

    def test_significance_tracked(self):
        srv = make_server(params=np.full(4, 2.0), n=1)
        srv.handle_push(0, 0, grad=np.full(4, 0.2))
        assert srv.last_significance == pytest.approx(
            np.linalg.norm(np.full(4, 0.2)) / np.linalg.norm(np.full(4, 2.2)), rel=1e-3
        )


class TestPullSemantics:
    def test_immediate_pull_when_condition_holds(self):
        srv = make_server(model=ssp(2), n=2)
        replies = []
        srv.handle_push(0, 0)
        assert srv.handle_pull(0, 0, replies.append) is True
        assert replies[0].progress == 0

    def test_pull_before_push_rejected(self):
        srv = make_server()
        with pytest.raises(ProtocolError, match="before its"):
            srv.handle_pull(0, 0, lambda r: None)

    def test_delayed_pull_buffered(self):
        srv = make_server(model=ssp(1), n=2)
        replies = []
        srv.handle_push(0, 0)
        srv.handle_push(0, 1)
        # worker 0 at progress 1, v_train 0, s=1: 1 < 0+1 false -> DPR
        assert srv.handle_pull(0, 1, replies.append) is False
        assert srv.buffered_pulls == 1
        assert replies == []

    def test_asp_never_delays(self):
        srv = make_server(model=asp(), n=2)
        replies = []
        for i in range(20):
            srv.handle_push(0, i)
            assert srv.handle_pull(0, i, replies.append)
        assert len(replies) == 20

    def test_reply_fields(self):
        srv = make_server(model=ssp(5), n=1, params=np.arange(3.0))
        srv.handle_push(0, 0, grad=np.zeros(3))
        replies = []
        srv.handle_pull(0, 0, replies.append)
        r: PullReply = replies[0]
        assert r.worker == 0 and r.progress == 0
        assert r.v_train == 1  # single worker: frontier advanced
        assert r.missing == 0
        np.testing.assert_array_equal(r.params, np.arange(3.0))

    def test_snapshot_isolated_from_mutation(self):
        srv = make_server(model=asp(), n=2, params=np.zeros(2))
        replies = []
        srv.handle_push(0, 0, grad=np.zeros(2))
        srv.handle_pull(0, 0, replies.append)
        srv.handle_push(1, 0, grad=np.full(2, 2.0))
        np.testing.assert_array_equal(replies[0].params, np.zeros(2))

    def test_no_snapshot_mode_shares_array(self):
        srv = make_server(model=asp(), n=1, params=np.zeros(2), snapshot_params=False)
        replies = []
        srv.handle_push(0, 0, grad=np.zeros(2))
        srv.handle_pull(0, 0, replies.append)
        assert replies[0].params is srv.params


class TestCopyOnWriteSnapshots:
    """One immutable parameter copy per version, shared across replies."""

    def test_same_version_replies_share_storage(self):
        srv = make_server(model=asp(), n=3, params=np.arange(4.0))
        replies = []
        for w in range(3):
            srv.handle_push(w, 0)  # grad=None: version bumps, params don't
        for w in range(3):
            srv.handle_pull(w, 0, replies.append)
        assert replies[0].params is replies[1].params is replies[2].params
        assert srv.snapshot_copies == 1
        assert srv.snapshot_copies_avoided == 2

    def test_snapshot_is_read_only(self):
        srv = make_server(model=asp(), n=1, params=np.zeros(3))
        replies = []
        srv.handle_push(0, 0)
        srv.handle_pull(0, 0, replies.append)
        assert replies[0].params.flags.writeable is False
        with pytest.raises(ValueError):
            replies[0].params[0] = 1.0
        # The server's live array stays writable — pushes keep applying.
        srv.handle_push(0, 1, grad=np.ones(3))

    def test_push_invalidates_shared_copy(self):
        srv = make_server(model=asp(), n=2, params=np.zeros(2))
        replies = []
        srv.handle_push(0, 0, grad=np.zeros(2))
        srv.handle_pull(0, 0, replies.append)
        srv.handle_push(1, 0, grad=np.full(2, 2.0))  # w += g / N with N=2
        srv.handle_pull(1, 0, replies.append)
        assert replies[0].params is not replies[1].params
        np.testing.assert_array_equal(replies[0].params, np.zeros(2))
        np.testing.assert_array_equal(replies[1].params, np.full(2, 1.0))
        assert srv.snapshot_copies == 2
        assert srv.snapshot_copies_avoided == 0

    def test_restore_invalidates_even_at_same_version(self):
        # A restore can reinstate the same version *number* with different
        # parameter values; a version-equality check alone would hand out
        # the stale cached copy.
        srv = make_server(model=asp(), n=1, params=np.zeros(2))
        replies = []
        srv.handle_push(0, 0)
        srv.handle_pull(0, 0, replies.append)
        version = srv.version
        srv.handle_restore(
            {
                "v_train": srv.v_train,
                "version": version,
                "worker_progress": [0],
                "count": {0: 1},
                "last_significance": 0.0,
            },
            params=np.full(2, 7.0),
        )
        srv.handle_pull(0, 0, replies.append)
        assert srv.version == version
        assert replies[1].params is not replies[0].params
        np.testing.assert_array_equal(replies[1].params, np.full(2, 7.0))

    def test_no_snapshot_mode_counts_nothing(self):
        srv = make_server(model=asp(), n=1, params=np.zeros(2), snapshot_params=False)
        srv.handle_push(0, 0)
        srv.handle_pull(0, 0, lambda r: None)
        assert srv.snapshot_copies == 0
        assert srv.snapshot_copies_avoided == 0

    def test_pull_regression_rejected(self):
        srv = make_server(model=ssp(5), n=2)
        srv.handle_push(0, 0)
        srv.handle_push(0, 1)
        srv.handle_pull(0, 1, lambda r: None)
        with pytest.raises(ProtocolError, match="must not regress"):
            srv.handle_pull(0, 0, lambda r: None)

    def test_pull_ahead_of_own_push_rejected(self):
        srv = make_server(model=ssp(5), n=2)
        srv.handle_push(0, 0)
        with pytest.raises(ProtocolError, match="before its"):
            srv.handle_pull(0, 1, lambda r: None)

    def test_repeated_pull_at_same_progress_allowed(self):
        # A worker may re-issue the same pull (retry after a dropped
        # reply); only going backwards is a protocol violation.
        srv = make_server(model=ssp(5), n=2)
        replies = []
        srv.handle_push(0, 0)
        srv.handle_pull(0, 0, replies.append)
        srv.handle_pull(0, 0, replies.append)
        assert len(replies) == 2


class TestLazyExecution:
    """The Figure 3 scenario: s=3, three workers, W2 straggles."""

    def _race_ahead(self, srv):
        replies = []
        for w in (0, 1):
            for i in range(3):
                srv.handle_push(w, i)
                srv.handle_pull(w, i, replies.append)
            srv.handle_push(w, 3)
        return replies

    def test_lazy_waits_for_full_catchup(self):
        srv = make_server(model=ssp(3), execution=ExecutionMode.LAZY, n=3)
        self._race_ahead(srv)
        replies = []
        srv.handle_pull(0, 3, replies.append)
        assert replies == []
        srv.handle_push(2, 0)
        srv.handle_push(2, 1)
        srv.handle_push(2, 2)
        assert replies == []  # still not caught up to progress 3
        srv.handle_push(2, 3)
        assert len(replies) == 1
        assert replies[0].missing == 0  # fully updated parameters

    def test_soft_releases_at_first_advance(self):
        srv = make_server(model=ssp(3), execution=ExecutionMode.SOFT_BARRIER, n=3)
        self._race_ahead(srv)
        replies = []
        srv.handle_pull(0, 3, replies.append)
        assert replies == []
        srv.handle_push(2, 0)
        assert len(replies) == 1  # released at the very next advance
        assert replies[0].missing == 3  # stale: missing W2's g1, g2, g3

    def test_soft_rebuffers_count_as_new_dprs(self):
        # BSP with a worker 3 ahead: the soft barrier re-forms repeatedly.
        srv = make_server(model=bsp(), execution=ExecutionMode.SOFT_BARRIER, n=2)
        for i in range(3):
            srv.handle_push(0, i)
        replies = []
        srv.handle_pull(0, 2, replies.append)
        assert srv.metrics.dprs == 1
        srv.handle_push(1, 0)  # advance 0->1: re-check fails, re-buffer
        assert srv.metrics.dprs == 2
        srv.handle_push(1, 1)
        assert srv.metrics.dprs == 3
        assert replies == []
        srv.handle_push(1, 2)
        assert len(replies) == 1
        assert srv.metrics.dprs == 3

    def test_lazy_single_dpr_per_block(self):
        srv = make_server(model=bsp(), execution=ExecutionMode.LAZY, n=2)
        for i in range(3):
            srv.handle_push(0, i)
        replies = []
        srv.handle_pull(0, 2, replies.append)
        for i in range(3):
            srv.handle_push(1, i)
        assert len(replies) == 1
        assert srv.metrics.dprs == 1


class TestDropStragglers:
    def test_quorum_advances_without_straggler(self):
        srv = make_server(model=drop_stragglers(3, n_t=2), n=3)
        srv.handle_push(0, 0)
        srv.handle_push(1, 0)
        assert srv.v_train == 1  # straggler dropped from the barrier

    def test_straggler_still_contributes(self):
        params = np.zeros(2)
        srv = make_server(model=drop_stragglers(2, n_t=1), n=2, params=params)
        srv.handle_push(0, 0, grad=np.ones(2))
        assert srv.v_train == 1
        srv.handle_push(1, 0, grad=np.ones(2))  # late gradient still applied
        np.testing.assert_allclose(srv.params, np.ones(2))

    def test_straggler_pull_immediate_when_behind(self):
        srv = make_server(model=drop_stragglers(2, n_t=1), n=2)
        for i in range(3):
            srv.handle_push(0, i)
        assert srv.v_train == 3
        replies = []
        srv.handle_push(1, 0)
        assert srv.handle_pull(1, 0, replies.append)


class TestPSSPServer:
    def test_deterministic_under_seed(self):
        def run(seed):
            srv = make_server(
                model=pssp(1, 0.5), n=2, rng=np.random.default_rng(seed)
            )
            outcomes = []
            for i in range(30):
                srv.handle_push(0, i)
                outcomes.append(srv.handle_pull(0, i, lambda r: None))
                if srv.buffered_pulls:
                    # unblock by letting worker 1 catch up
                    srv.handle_push(1, srv.worker_progress[1] + 1)
            while srv.worker_progress[1] < 29:
                srv.handle_push(1, srv.worker_progress[1] + 1)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_dynamic_pssp_uses_significance(self):
        srv = make_server(
            model=dynamic_pssp(1, 1.0), n=2, params=np.full(4, 1.0),
            rng=np.random.default_rng(0),
        )
        srv.handle_push(0, 0, grad=np.full(4, 10.0))
        assert srv.last_significance > 0.5


class TestMetricsAccounting:
    def test_counts(self):
        srv = make_server(model=ssp(1), n=2)
        srv.handle_push(0, 0)
        srv.handle_pull(0, 0, lambda r: None)
        srv.handle_push(0, 1)
        srv.handle_pull(0, 1, lambda r: None)  # delayed
        m = srv.metrics
        assert m.pushes == 2
        assert m.pulls == 2
        assert m.immediate_pulls == 1
        assert m.dprs == 1

    def test_wait_time_uses_clock(self):
        clock = {"t": 0.0}
        srv = make_server(model=ssp(1), n=2, clock=lambda: clock["t"])
        srv.handle_push(0, 0)
        srv.handle_push(0, 1)
        srv.handle_pull(0, 1, lambda r: None)
        clock["t"] = 5.0
        srv.handle_push(1, 0)
        srv.handle_push(1, 1)
        assert srv.metrics.dpr_wait_total == pytest.approx(5.0)

    def test_describe(self):
        srv = make_server()
        assert "shard 0" in srv.describe()


def _grad_rounds(seed, iters, n, shape=(8,)):
    rng = np.random.default_rng(seed)
    return [[rng.normal(size=shape) for _ in range(n)] for _ in range(iters)]


class TestBatchedApply:
    """Deferred (vectorized) gradient application: the mesoscale push path.

    Same-version pushes on significance-blind configurations may be
    buffered and applied in one vectorized flush — but only as a change
    of *when* the arithmetic runs, never of its results: final
    parameters and the significance signal must be bit-identical to the
    eager per-push path (``batch_apply=False``), and any configuration
    that can observe intermediate state must stay eager.
    """

    def _replay(self, srv, grads):
        for it, row in enumerate(grads):
            for w, g in enumerate(row):
                srv.handle_push(w, it, grad=g.copy())

    def test_params_and_significance_bit_identical(self):
        grads = _grad_rounds(0, 5, 3)
        batched = make_server(model=ssp(2), n=3, params=np.zeros(8))
        eager = make_server(
            model=ssp(2), n=3, params=np.zeros(8), batch_apply=False
        )
        self._replay(batched, grads)
        self._replay(eager, grads)
        assert batched.batched_applies > 0
        assert eager.batched_applies == 0
        assert np.array_equal(batched.params, eager.params)
        assert batched.last_significance == eager.last_significance
        assert batched.apply_flushes >= 1

    def test_single_pending_grad_flush_identical(self):
        grads = _grad_rounds(3, 1, 1)
        batched = make_server(model=ssp(2), n=1, params=np.zeros(8))
        eager = make_server(
            model=ssp(2), n=1, params=np.zeros(8), batch_apply=False
        )
        self._replay(batched, grads)
        self._replay(eager, grads)
        assert np.array_equal(batched.params, eager.params)
        assert batched.last_significance == eager.last_significance

    def test_snapshot_flushes_pending(self):
        grads = _grad_rounds(1, 3, 2)
        batched = make_server(model=ssp(3), n=2, params=np.zeros(8))
        eager = make_server(
            model=ssp(3), n=2, params=np.zeros(8), batch_apply=False
        )
        self._replay(batched, grads)
        self._replay(eager, grads)
        snap = batched._snapshot()
        assert np.array_equal(snap, eager.params)
        # COW invariants survive: same-version snapshots share storage.
        assert batched._snapshot() is snap
        assert not snap.flags.writeable

    def test_significance_sensitive_model_stays_eager(self):
        # dynamic_pssp's c is a callable of the significance signal: a
        # deferred apply would change what mid-batch pulls observe.
        grads = _grad_rounds(2, 4, 3)
        srv = make_server(model=dynamic_pssp(2), n=3, params=np.zeros(8))
        self._replay(srv, grads)
        assert srv.batched_applies == 0
        # Constant-c PSSP structurally ignores significance: defers.
        srv2 = make_server(model=pssp(2, 0.5), n=3, params=np.zeros(8))
        self._replay(srv2, grads)
        assert srv2.batched_applies > 0

    def test_opt_in_overrides_model_gate(self):
        grads = _grad_rounds(4, 4, 3)
        forced = make_server(
            model=dynamic_pssp(2), n=3, params=np.zeros(8), batch_apply=True
        )
        eager = make_server(
            model=dynamic_pssp(2), n=3, params=np.zeros(8), batch_apply=False
        )
        self._replay(forced, grads)
        self._replay(eager, grads)
        assert forced.batched_applies > 0
        assert np.array_equal(forced.params, eager.params)
        assert forced.last_significance == eager.last_significance

    def test_custom_apply_fn_never_batched(self):
        calls = []

        def apply(params, grad, info):
            calls.append(info.progress)
            params += grad

        srv = make_server(
            params=np.zeros(2), apply_fn=apply, n=1, batch_apply=True
        )
        srv.handle_push(0, 0, grad=np.ones(2))
        assert calls == [0]  # applied eagerly, batching declined
        assert srv.batched_applies == 0

    def test_explicit_significance_flushes_and_wins(self):
        srv = make_server(model=ssp(2), n=2, params=np.zeros(4))
        srv.handle_push(0, 0, grad=np.ones(4))
        srv.handle_push(1, 0, grad=np.ones(4), significance=0.75)
        assert srv.last_significance == 0.75
        np.testing.assert_allclose(srv.params, np.ones(4))

    def test_incremental_trackers_match_full_scan(self):
        rng = np.random.default_rng(1)
        srv = make_server(model=ssp(100), n=5)
        for _ in range(200):
            w = int(rng.integers(5))
            srv.handle_push(w, srv.worker_progress[w] + 1)
            assert srv._fastest == max(srv.worker_progress)
            assert srv._slowest == min(srv.worker_progress)

    def test_restore_recomputes_trackers_and_flushes(self):
        srv = make_server(model=ssp(10), n=3, params=np.zeros(4))
        for w in range(3):
            srv.handle_push(w, 0, grad=np.ones(4))
        state = dict(
            worker_progress=[4, 2, 7], v_train=2, version=5,
            count={}, last_significance=0.25,
        )
        srv.handle_restore(state, params=np.full(4, 9.0))
        np.testing.assert_array_equal(srv.params, np.full(4, 9.0))
        assert srv.last_significance == 0.25
        assert srv._fastest == 7
        assert srv._slowest == 2
        assert srv._n_at_slowest == 1
        # Pushes resume from the restored per-worker progress.
        srv.handle_push(1, 3)
        assert srv._slowest == 3
