"""Tests for the experiment harness, workloads and result containers."""

import json

import numpy as np
import pytest

from repro.bench.harness import PAPER, QUICK, ExperimentResult, Scale, resolve_scale
from repro.bench.workloads import (
    blobs_task,
    cifar_proxy_task,
    null_step,
    null_task_spec,
    resnet_proxy_task,
    workload_for,
)
from repro.core.driver import StepContext
from repro.utils.rng import derive_rng


class TestScale:
    def test_presets_valid(self):
        for scale in (QUICK, PAPER):
            assert scale.iters >= 1
            assert len(scale.worker_counts) >= 2
        assert PAPER.iters > QUICK.iters

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Scale("bad", 0, 1, (2,), 4, 8, 10, 5, 1, 1)

    def test_resolve_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert resolve_scale().name == "paper"
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert resolve_scale().name == "quick"
        monkeypatch.setenv("REPRO_SCALE", "")
        assert resolve_scale(QUICK).name == "quick"


class TestExperimentResult:
    def test_rows_records_and_lookup(self):
        r = ExperimentResult("Exp", headers=["a", "b"])
        r.add_row(1, 2)
        rec = r.record("one", x=1.5)
        assert r.find("one") is rec
        with pytest.raises(KeyError):
            r.find("two")

    def test_render(self):
        r = ExperimentResult("Exp", headers=["a"])
        r.add_row("v")
        r.notes.append("hello")
        out = r.render()
        assert "Exp" in out and "hello" in out

    def test_save_roundtrip(self, tmp_path):
        r = ExperimentResult("My Exp", headers=["a"])
        r.add_row(1)
        r.record("rec", m=2.0)
        path = r.save(directory=str(tmp_path))
        data = json.loads(path.read_text())
        assert data["experiment"] == "My Exp"
        assert data["records"][0]["metrics"]["m"] == 2.0


class TestWorkloads:
    def test_blobs_task_shapes(self):
        t = blobs_task(4, n_train=200, n_test=50)
        assert t.n_workers == 4
        assert t.init_params.ndim == 1

    def test_cifar_proxy_mlp_and_conv(self):
        for conv in (False, True):
            t = cifar_proxy_task(2, n_train=30, n_test=10, size=8, conv=conv)
            u = t.step_fn(StepContext(0, 0, t.init_params.copy(), derive_rng(0, "x")))
            assert np.isfinite(u).all()

    def test_resnet_proxy_trains_a_step(self):
        t = resnet_proxy_task(2, n_train=16, n_test=8, size=8, batch_size=4)
        u = t.step_fn(StepContext(0, 0, t.init_params.copy(), derive_rng(0, "x")))
        assert u.shape == t.init_params.shape
        assert np.isfinite(u).all()

    def test_null_workload(self):
        spec = null_task_spec(16)
        assert spec.total_elements == 16
        out = null_step(StepContext(0, 0, np.zeros(16), derive_rng(0, "n")))
        assert not out.any()

    def test_workload_for(self):
        assert workload_for("alexnet").spec.name == "alexnet-cifar"
        assert workload_for("resnet56").spec.total_elements > 8e5
        with pytest.raises(ValueError):
            workload_for("vgg")
