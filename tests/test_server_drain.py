"""Differential tests: parallel shard drain lanes vs the event drain.

``server_drain="lane"`` retires each parked request analytically at
``max(deliver_time, shard busy-lane end)`` inside the delivery event —
no busy-window deque, no per-request drain events.  The oracle is
``server_drain="event"``, the original single-deque busy-window drain.
The contract is *timestamp* equivalence: every message crosses the wire
with bit-identical ``send_time``/``deliver_time`` and every run ends at
the same simulated instant with the same trained parameters.  Message
*ids* may legally differ once requests park (the lane issues replies
immediately, the event drain after a wakeup), so traces are compared
msg-id-free as sorted multisets.

Also covers :func:`repro.core.server.flush_applies_across` — the
cross-shard vectorized apply flush the lane runner uses — against each
shard's own ``_flush_applies``, bit for bit.
"""

import json

import numpy as np
import pytest

from repro.bench.workloads import blobs_task
from repro.core.models import ssp
from repro.core.server import (
    ExecutionMode,
    ShardServer,
    flush_applies_across,
)
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.sim.cluster import cpu_cluster
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.stragglers import DeterministicCompute, LogNormalCompute

from tests.test_engine_fastforward import _preset_configs


def _run_drain(cfg_kwargs, drain, **extra):
    """One full run with a delivery trace, on the chosen drain mode."""
    cfg = SimConfig(server_drain=drain, **extra, **cfg_kwargs)
    runner = FluentPSSimRunner(cfg)
    trace = []
    runner.net.on_delivery(
        lambda m: trace.append(
            (m.src, m.dst, m.tag, m.size_bytes, m.send_time, m.deliver_time)
        )
    )
    result = runner.run()
    return trace, result, runner


def _sorted(trace):
    return json.dumps(sorted(trace))


class TestPresetDifferential:
    """Entire co-simulated runs on each preset: identical wire timing."""

    @pytest.mark.parametrize("cfg_kwargs", _preset_configs())
    def test_run_traces_identical(self, cfg_kwargs):
        l_trace, l_result, l_runner = _run_drain(cfg_kwargs, "lane")
        e_trace, e_result, e_runner = _run_drain(cfg_kwargs, "event")
        # Msg-id-free multiset comparison, serialized through JSON so the
        # check is on bytes, not floats that compare equal after rounding.
        assert _sorted(l_trace) == _sorted(e_trace)
        assert l_trace  # the run actually produced traffic
        assert l_result.duration == e_result.duration
        assert l_result.messages_on_wire == e_result.messages_on_wire
        assert l_result.bytes_on_wire == e_result.bytes_on_wire
        assert l_result.total_comm_time == e_result.total_comm_time
        # Both modes agree on which requests parked (the lane cascades
        # them inline, the oracle schedules a drain wakeup each), and
        # dropping those wakeups is visible in the engine's event count.
        assert l_runner.server_msgs_inline == e_runner.server_msgs_inline
        assert l_runner.server_msgs_drained == e_runner.server_msgs_drained
        assert l_runner.engine.events_processed <= e_runner.engine.events_processed


class TestCongestedDrain:
    """A server op cost far wider than the incast spacing: every burst
    after the first request parks behind the shard lane."""

    def _kwargs(self):
        return dict(
            cluster=cpu_cluster(6, n_servers=2),
            max_iter=4,
            sync=ssp(2),
            workload=alexnet_cifar_workload(),
            batch_per_worker=64,
            compute_model=DeterministicCompute(),
            seed=5,
            server_op_overhead_s=0.05,
        )

    def test_parked_requests_retire_at_identical_times(self):
        l_trace, l_result, l_runner = _run_drain(self._kwargs(), "lane")
        e_trace, e_result, e_runner = _run_drain(self._kwargs(), "event")
        assert e_runner.server_msgs_drained > 0  # requests actually parked
        assert l_runner.server_msgs_drained == e_runner.server_msgs_drained
        assert _sorted(l_trace) == _sorted(e_trace)
        assert l_result.duration == e_result.duration
        assert l_result.total_comm_time == e_result.total_comm_time

    def test_congested_drain_under_calendar_engine(self):
        """Lane replies are posted at analytic (future) instants and must
        merge correctly with the calendar window."""
        l_trace, l_result, l_runner = _run_drain(
            self._kwargs(), "lane", engine_calendar_threshold=4
        )
        e_trace, e_result, _ = _run_drain(
            self._kwargs(), "event", engine_calendar=False
        )
        assert l_runner.engine.calendar_sweeps > 0
        assert _sorted(l_trace) == _sorted(e_trace)
        assert l_result.duration == e_result.duration

    def test_training_run_params_identical(self):
        """A real (non-timing-only) soft-barrier run: DPR costs stretch
        the busy lanes and the final parameters must still be bit-equal.
        The task is built fresh per run — training mutates it in place."""

        def kwargs():
            return dict(
                cluster=cpu_cluster(3, n_servers=2),
                max_iter=8,
                sync=ssp(2),
                task=blobs_task(3, n_train=120, n_test=60),
                execution=ExecutionMode.SOFT_BARRIER,
                compute_model=LogNormalCompute(0.2),
                seed=11,
                server_op_overhead_s=0.02,
            )

        _, l_result, _ = _run_drain(kwargs(), "lane")
        _, e_result, _ = _run_drain(kwargs(), "event")
        assert l_result.final_params is not None
        assert np.array_equal(l_result.final_params, e_result.final_params)
        assert l_result.duration == e_result.duration

    def test_unknown_drain_rejected(self):
        with pytest.raises(ValueError, match="server_drain"):
            SimConfig(
                cluster=cpu_cluster(2, n_servers=1),
                max_iter=1,
                sync=ssp(1),
                workload=alexnet_cifar_workload(),
                server_drain="deque",
            )


class TestCrossShardFlush:
    """flush_applies_across == per-shard _flush_applies, bit for bit."""

    def _fleet(self, shapes, seed=0):
        """Shard servers with synthetic deferred gradients; ``shapes`` is
        a list of (n_pending_rows, param_length) per shard."""
        rng = np.random.default_rng(seed)
        servers = []
        for shard, (k, length) in enumerate(shapes):
            s = ShardServer(
                shard_id=shard,
                n_workers=4,
                model=ssp(3),
                params=rng.standard_normal(length),
            )
            s._pending_grads = [rng.standard_normal(length) for _ in range(k)]
            servers.append(s)
        return servers

    @pytest.mark.parametrize(
        "shapes",
        [
            [(3, 64)] * 4,  # homogeneous: the vectorized group path
            [(3, 64), (3, 64), (2, 64), (3, 32)],  # mixed groups + fallbacks
            [(1, 16), (0, 16), (5, 16)],  # single-row and empty shards
            [(4, 128)],  # lone member falls back
        ],
    )
    def test_bit_identical_to_per_shard_flush(self, shapes):
        grouped = self._fleet(shapes, seed=7)
        solo = self._fleet(shapes, seed=7)
        flush_applies_across(grouped)
        for s in solo:
            s._flush_applies()
        for g, s in zip(grouped, solo):
            assert np.array_equal(g.params, s.params)
            assert g._pending_grads == [] == s._pending_grads
            assert g._last_significance == s._last_significance
            assert g.apply_flushes == s.apply_flushes

    def test_lane_runner_uses_cross_shard_flush(self):
        """The lane runner's final parameter assembly goes through the
        cross-shard flush; the result must match the event oracle's.
        The task is built fresh per run — training mutates it in place."""

        def kwargs():
            return dict(
                cluster=cpu_cluster(4, n_servers=2),
                max_iter=6,
                sync=ssp(2),
                task=blobs_task(4, n_train=160, n_test=40),
                compute_model=DeterministicCompute(),
                seed=3,
            )

        _, l_result, _ = _run_drain(kwargs(), "lane")
        _, e_result, _ = _run_drain(kwargs(), "event")
        assert l_result.final_params is not None
        assert np.array_equal(l_result.final_params, e_result.final_params)
