"""Gradient checks and behaviour tests for core layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.layers import BatchNorm, Dense, Dropout, Flatten, ReLU
from repro.utils.rng import derive_rng


def numerical_grad_input(layer, x, dy, eps=1e-6, train=True):
    """Central-difference dL/dx where L = sum(forward(x) * dy)."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    g = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        lp = float((layer.forward(x, train=train) * dy).sum())
        flat[i] = orig - eps
        lm = float((layer.forward(x, train=train) * dy).sum())
        flat[i] = orig
        g[i] = (lp - lm) / (2 * eps)
    return grad


def numerical_grad_param(layer, key, x, dy, eps=1e-6, train=True):
    param = layer.params[key]
    grad = np.zeros_like(param)
    flat = param.ravel()
    g = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        lp = float((layer.forward(x, train=train) * dy).sum())
        flat[i] = orig - eps
        lm = float((layer.forward(x, train=train) * dy).sum())
        flat[i] = orig
        g[i] = (lp - lm) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape_and_values(self, rng):
        layer = Dense(3, 2, rng)
        layer.params["W"][...] = np.arange(6).reshape(3, 2)
        layer.params["b"][...] = [1.0, -1.0]
        x = np.array([[1.0, 0.0, 0.0]])
        np.testing.assert_allclose(layer.forward(x), [[1.0, 0.0]])

    def test_input_gradient(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        dy = rng.normal(size=(5, 3))
        layer.forward(x)
        dx = layer.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(layer, x, dy), atol=1e-5)

    @pytest.mark.parametrize("key", ["W", "b"])
    def test_param_gradients(self, rng, key):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        dy = rng.normal(size=(5, 3))
        layer.forward(x)
        layer.backward(dy)
        np.testing.assert_allclose(
            layer.grads[key], numerical_grad_param(layer, key, x, dy), atol=1e-5
        )

    def test_wrong_input_shape(self, rng):
        layer = Dense(4, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng).backward(np.zeros((1, 2)))

    def test_n_params(self, rng):
        assert Dense(4, 3, rng).n_params == 15

    def test_invalid_dims(self, rng):
        with pytest.raises(ValueError):
            Dense(0, 3, rng)


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_array_equal(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x)
        np.testing.assert_array_equal(layer.backward(np.ones((1, 2))), [[0.0, 1.0]])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))


class TestFlatten:
    def test_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        y = layer.forward(x)
        assert y.shape == (2, 60)
        np.testing.assert_array_equal(layer.backward(y), x)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng)
        x = rng.normal(size=(4, 6))
        np.testing.assert_array_equal(layer.forward(x, train=False), x)

    def test_train_mode_scales(self):
        rng = derive_rng(0, "drop")
        layer = Dropout(0.5, rng)
        x = np.ones((200, 50))
        y = layer.forward(x, train=True)
        # Inverted dropout keeps the expectation.
        assert y.mean() == pytest.approx(1.0, abs=0.05)
        assert (y == 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_backward_uses_same_mask(self):
        rng = derive_rng(0, "drop2")
        layer = Dropout(0.3, rng)
        x = np.ones((10, 10))
        y = layer.forward(x, train=True)
        dx = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal((y == 0), (dx == 0))

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        layer = BatchNorm(4)
        x = rng.normal(loc=5.0, scale=3.0, size=(64, 4))
        y = layer.forward(x, train=True)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_at_eval(self, rng):
        layer = BatchNorm(4, momentum=0.0)  # running stats = last batch
        x = rng.normal(loc=2.0, size=(64, 4))
        layer.forward(x, train=True)
        y = layer.forward(x, train=False)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-2)

    def test_input_gradient_2d(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        dy = rng.normal(size=(6, 3))
        layer.forward(x, train=True)
        dx = layer.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(layer, x, dy), atol=1e-5)

    def test_input_gradient_4d(self, rng):
        layer = BatchNorm(2)
        x = rng.normal(size=(3, 2, 2, 2))
        dy = rng.normal(size=(3, 2, 2, 2))
        layer.forward(x, train=True)
        dx = layer.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(layer, x, dy), atol=1e-5)

    @pytest.mark.parametrize("key", ["gamma", "beta"])
    def test_param_gradients(self, rng, key):
        layer = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        dy = rng.normal(size=(6, 3))
        layer.forward(x, train=True)
        layer.backward(dy)
        np.testing.assert_allclose(
            layer.grads[key], numerical_grad_param(layer, key, x, dy), atol=1e-5
        )

    def test_invalid_shapes(self):
        layer = BatchNorm(3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 3, 4)))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(3, momentum=1.0)


class TestProperties:
    @given(
        batch=st.integers(min_value=1, max_value=8),
        din=st.integers(min_value=1, max_value=10),
        dout=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_dense_grad_check_random_shapes(self, batch, din, dout, seed):
        rng = np.random.default_rng(seed)
        layer = Dense(din, dout, rng)
        x = rng.normal(size=(batch, din))
        dy = rng.normal(size=(batch, dout))
        layer.forward(x)
        dx = layer.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(layer, x, dy), atol=1e-4)
