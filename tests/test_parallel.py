"""Tests for the real-thread runner (liveness + correctness)."""

import numpy as np
import pytest

from repro.core.api import ParameterServerSystem
from repro.core.models import asp, bsp, drop_stragglers, pssp, ssp
from repro.core.server import ExecutionMode
from repro.parallel.threaded import ThreadedRunner


def make_runner(spec, step, sync, n=4, servers=2, iters=30, execution=ExecutionMode.LAZY,
                seed=0):
    system = ParameterServerSystem(
        spec, np.zeros(spec.total_elements), n, servers, sync, execution, seed=seed
    )
    return ThreadedRunner(system, step, max_iter=iters, seed=seed, timeout_s=60.0)


@pytest.mark.parametrize(
    "sync_factory",
    [lambda n: bsp(), lambda n: asp(), lambda n: ssp(2), lambda n: pssp(2, 0.5),
     lambda n: drop_stragglers(n, n_t=n - 1)],
    ids=["bsp", "asp", "ssp", "pssp", "drop"],
)
@pytest.mark.parametrize("execution", list(ExecutionMode))
def test_all_models_live_under_threads(quadratic_problem, sync_factory, execution):
    spec, target, make_step = quadratic_problem
    n = 4
    runner = make_runner(spec, make_step(), sync_factory(n), n=n)
    runner.system.execution = execution
    res = runner.run()
    assert res.ok, res.worker_errors
    assert res.metrics.pushes == 30 * n * 2


def test_threaded_converges(quadratic_problem):
    spec, target, make_step = quadratic_problem
    res = make_runner(spec, make_step(lr=0.3), ssp(2), iters=60).run()
    assert res.ok
    assert np.linalg.norm(res.final_params - target) < 0.1


def test_threaded_metrics_consistent(quadratic_problem):
    spec, target, make_step = quadratic_problem
    n, servers, iters = 4, 2, 30
    res = make_runner(spec, make_step(), ssp(1), n=n, servers=servers, iters=iters).run()
    assert res.ok
    m = res.metrics
    assert m.pulls >= iters * n * servers  # soft rebuffers may exceed
    assert m.immediate_pulls + m.dprs == m.pulls


def test_threaded_many_workers_stress(quadratic_problem):
    spec, target, make_step = quadratic_problem
    res = make_runner(spec, make_step(noise=0.05), pssp(3, 0.3), n=12,
                      servers=3, iters=25).run()
    assert res.ok
    assert res.wall_time < 60


def test_invalid_iters(quadratic_problem):
    spec, target, make_step = quadratic_problem
    system = ParameterServerSystem(
        spec, np.zeros(spec.total_elements), 2, 1, ssp(1), ExecutionMode.LAZY
    )
    with pytest.raises(ValueError):
        ThreadedRunner(system, make_step(), max_iter=0)
