"""Tests for the real-thread runner (liveness + correctness)."""

import numpy as np
import pytest

from repro.core.api import ParameterServerSystem
from repro.core.models import asp, bsp, drop_stragglers, pssp, ssp
from repro.core.server import ExecutionMode
from repro.parallel.threaded import ThreadedRunner


def make_runner(spec, step, sync, n=4, servers=2, iters=30, execution=ExecutionMode.LAZY,
                seed=0):
    system = ParameterServerSystem(
        spec, np.zeros(spec.total_elements), n, servers, sync, execution, seed=seed
    )
    return ThreadedRunner(system, step, max_iter=iters, seed=seed, timeout_s=60.0)


@pytest.mark.parametrize(
    "sync_factory",
    [lambda n: bsp(), lambda n: asp(), lambda n: ssp(2), lambda n: pssp(2, 0.5),
     lambda n: drop_stragglers(n, n_t=n - 1)],
    ids=["bsp", "asp", "ssp", "pssp", "drop"],
)
@pytest.mark.parametrize("execution", list(ExecutionMode))
def test_all_models_live_under_threads(quadratic_problem, sync_factory, execution):
    spec, target, make_step = quadratic_problem
    n = 4
    runner = make_runner(spec, make_step(), sync_factory(n), n=n)
    runner.system.execution = execution
    res = runner.run()
    assert res.ok, res.worker_errors
    assert res.metrics.pushes == 30 * n * 2


def test_threaded_converges(quadratic_problem):
    spec, target, make_step = quadratic_problem
    res = make_runner(spec, make_step(lr=0.3), ssp(2), iters=60).run()
    assert res.ok
    assert np.linalg.norm(res.final_params - target) < 0.1


def test_threaded_metrics_consistent(quadratic_problem):
    spec, target, make_step = quadratic_problem
    n, servers, iters = 4, 2, 30
    res = make_runner(spec, make_step(), ssp(1), n=n, servers=servers, iters=iters).run()
    assert res.ok
    m = res.metrics
    assert m.pulls >= iters * n * servers  # soft rebuffers may exceed
    assert m.immediate_pulls + m.dprs == m.pulls


def test_threaded_many_workers_stress(quadratic_problem):
    spec, target, make_step = quadratic_problem
    res = make_runner(spec, make_step(noise=0.05), pssp(3, 0.3), n=12,
                      servers=3, iters=25).run()
    assert res.ok
    assert res.wall_time < 60


def test_invalid_iters(quadratic_problem):
    spec, target, make_step = quadratic_problem
    system = ParameterServerSystem(
        spec, np.zeros(spec.total_elements), 2, 1, ssp(1), ExecutionMode.LAZY
    )
    with pytest.raises(ValueError):
        ThreadedRunner(system, make_step(), max_iter=0)


class TestInstrumentation:
    def test_wall_clock_histograms_per_worker(self, quadratic_problem):
        from repro.obs import MetricsRegistry, Observability

        spec, target, make_step = quadratic_problem
        obs = Observability(MetricsRegistry("threads"))
        system = ParameterServerSystem(
            spec, np.zeros(spec.total_elements), 2, 2, ssp(2)
        )
        runner = ThreadedRunner(
            system, make_step(), max_iter=10, timeout_s=60.0, obs=obs
        )
        res = runner.run()
        assert res.ok, res.worker_errors
        for name in (
            "threaded_iter_seconds",
            "threaded_lock_wait_seconds",
            "threaded_pull_block_seconds",
        ):
            h = obs.registry.get(name)
            assert h.count(worker=0) == 10, name
            assert h.count(worker=1) == 10, name
        assert obs.registry.get("threaded_iter_seconds").sum(worker=0) >= 0.0


class _ImmediateSystem:
    """Stub PS system whose pulls always answer synchronously."""

    n_workers = 2

    def __init__(self):
        from repro.core.metrics import SyncMetrics

        self._params = np.zeros(4)
        self._metrics = SyncMetrics()

    def set_clock(self, clock):
        pass

    def current_params(self):
        return self._params.copy()

    def s_push(self, worker, i, update):
        pass

    def s_pull(self, worker, i, on_complete):
        from repro.core.api import PullResult

        on_complete(PullResult(worker=worker, progress=i, params=self._params.copy()))

    def merged_metrics(self):
        return self._metrics


class TestJoinDeadline:
    def test_shared_deadline_and_progress_in_error(self):
        import time as _time

        def step(ctx):
            if ctx.worker == 1:
                _time.sleep(5.0)  # hang one worker past the deadline
            return np.zeros(4)

        runner = ThreadedRunner(
            _ImmediateSystem(), step, max_iter=3, timeout_s=0.2, join_grace_s=0.2
        )
        t0 = _time.monotonic()
        res = runner.run()
        elapsed = _time.monotonic() - t0
        assert not res.ok
        err = res.worker_errors[-1]
        assert isinstance(err, TimeoutError)
        msg = str(err)
        assert "fluentps-worker-1" in msg
        assert "last completed iteration" in msg
        assert "'worker0': 2" in msg  # finished all 3 iterations
        assert "'worker1': -1" in msg  # never completed one
        # one shared deadline, not a fresh timeout per joined thread
        assert elapsed < 2.0

    def test_invalid_params_rejected(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        system = ParameterServerSystem(
            spec, np.zeros(spec.total_elements), 2, 1, bsp()
        )
        with pytest.raises(ValueError):
            ThreadedRunner(system, make_step(), max_iter=1, timeout_s=0.0)
        with pytest.raises(ValueError):
            ThreadedRunner(system, make_step(), max_iter=1, join_grace_s=-1.0)
