"""Tests for the discrete-event co-simulation runner."""

import pytest

from repro.bench.workloads import blobs_task
from repro.core.models import asp, bsp, drop_stragglers, pssp, ssp
from repro.core.server import ExecutionMode
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.sim.cluster import cpu_cluster, gpu_cluster_p2
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import DeterministicCompute, ExponentialTailCompute


def timing_config(n=4, servers=2, iters=10, sync=None, **kw):
    return SimConfig(
        cluster=gpu_cluster_p2(n, servers),
        max_iter=iters,
        sync=sync or bsp(),
        workload=alexnet_cifar_workload(),
        batch_per_worker=64,
        compute_model=kw.pop("compute_model", DeterministicCompute()),
        seed=kw.pop("seed", 0),
        **kw,
    )


class TestConfig:
    def test_requires_task_or_workload(self):
        with pytest.raises(ValueError):
            SimConfig(cluster=gpu_cluster_p2(2), max_iter=5, sync=bsp())

    def test_task_worker_mismatch(self):
        task = blobs_task(4, n_train=100, n_test=50)
        with pytest.raises(ValueError):
            SimConfig(cluster=gpu_cluster_p2(2), max_iter=5, sync=bsp(), task=task)

    def test_wire_scale_auto(self):
        task = blobs_task(2, n_train=100, n_test=50)
        cfg = SimConfig(
            cluster=gpu_cluster_p2(2), max_iter=5, sync=bsp(), task=task,
            workload=alexnet_cifar_workload(),
        )
        expected = cfg.workload.wire_bytes / task.spec.total_bytes
        assert cfg.resolved_wire_scale() == pytest.approx(expected)

    def test_wire_scale_explicit(self):
        cfg = timing_config(wire_scale=3.0)
        assert cfg.resolved_wire_scale() == 3.0
        with pytest.raises(ValueError):
            timing_config(wire_scale=-1.0).resolved_wire_scale()

    def test_base_compute_from_workload(self):
        cfg = timing_config()
        node_flops = cfg.cluster.workers[0].flops
        expected = cfg.workload.train_flops_per_sample * 64 / node_flops
        assert cfg.resolved_base_compute(node_flops) == pytest.approx(expected)

    def test_invalid_iters(self):
        with pytest.raises(ValueError):
            timing_config(iters=0)


class TestTimingRuns:
    def test_completes_and_accounts(self):
        r = run_fluentps(timing_config(iters=8))
        assert r.iterations == 8
        assert r.duration > 0
        assert r.bytes_on_wire > 0
        assert r.metrics.pushes == 8 * 4 * 2
        assert r.metrics.pulls >= 8 * 4 * 2
        assert len(r.worker_finish_times) == 4

    def test_deterministic(self):
        a = run_fluentps(timing_config(sync=pssp(2, 0.5), seed=5,
                                       compute_model=ExponentialTailCompute(0.1, 2.0)))
        b = run_fluentps(timing_config(sync=pssp(2, 0.5), seed=5,
                                       compute_model=ExponentialTailCompute(0.1, 2.0)))
        assert a.duration == b.duration
        assert a.metrics.dprs == b.metrics.dprs

    def test_comm_time_positive_and_consistent(self):
        r = run_fluentps(timing_config())
        assert r.total_comm_time > 0
        assert r.mean_comm_time == pytest.approx(r.total_comm_time / 4)
        # total wall across workers = compute + comm
        assert r.total_compute_time + r.total_comm_time == pytest.approx(
            sum(r.worker_finish_times), rel=1e-9
        )

    def test_more_workers_more_comm(self):
        small = run_fluentps(timing_config(n=2, iters=6))
        big = run_fluentps(timing_config(n=8, iters=6))
        assert big.mean_comm_time > small.mean_comm_time

    def test_wire_scale_scales_bytes(self):
        a = run_fluentps(timing_config(iters=4, wire_scale=1.0))
        b = run_fluentps(timing_config(iters=4, wire_scale=2.0))
        assert b.bytes_on_wire > 1.5 * a.bytes_on_wire

    def test_per_server_models(self):
        cfg = timing_config(servers=2, sync=[ssp(2), asp()])
        r = run_fluentps(cfg)
        assert r.duration > 0

    def test_drop_stragglers_runs(self):
        cfg = timing_config(sync=drop_stragglers(4, n_t=3),
                            compute_model=ExponentialTailCompute(0.2, 3.0))
        r = run_fluentps(cfg)
        assert r.iterations == 10


class TestTrainingRuns:
    def test_training_converges(self):
        n = 4
        task = blobs_task(n, n_train=600, n_test=200, seed=7)
        cfg = SimConfig(
            cluster=cpu_cluster(n, 1),
            max_iter=120,
            sync=ssp(2),
            task=task,
            seed=1,
            base_compute_time=0.5,
            eval_every=40,
        )
        r = run_fluentps(cfg)
        assert r.final_params is not None
        assert r.eval_by_iteration.final() > 0.55
        assert len(r.eval_by_iteration) == 3

    def test_training_workers_use_stale_params(self):
        """With ASP, some answered pulls must be missing iterations when
        compute times vary (sanity on staleness plumbing)."""
        n = 4
        task = blobs_task(n, n_train=200, n_test=50, seed=3)
        cfg = SimConfig(
            cluster=cpu_cluster(n, 1),
            max_iter=60,
            sync=asp(),
            task=task,
            seed=2,
            base_compute_time=0.5,
            compute_model=ExponentialTailCompute(0.3, 3.0),
        )
        r = run_fluentps(cfg)
        assert r.metrics.mean_staleness() > 0

    def test_soft_barrier_run(self):
        n = 4
        task = blobs_task(n, n_train=200, n_test=50, seed=3)
        cfg = SimConfig(
            cluster=cpu_cluster(n, 1),
            max_iter=40,
            sync=ssp(1),
            execution=ExecutionMode.SOFT_BARRIER,
            task=task,
            seed=2,
            base_compute_time=0.5,
            compute_model=ExponentialTailCompute(0.3, 3.0),
        )
        r = run_fluentps(cfg)
        assert r.final_params is not None


class TestOverheads:
    def test_dpr_overhead_slows_soft_barrier(self):
        common = dict(
            n=6, iters=25, sync=ssp(1),
            compute_model=ExponentialTailCompute(0.2, 4.0),
        )
        cheap = run_fluentps(timing_config(
            execution=ExecutionMode.SOFT_BARRIER, dpr_overhead_s=0.0, **common))
        costly = run_fluentps(timing_config(
            execution=ExecutionMode.SOFT_BARRIER, dpr_overhead_s=0.05, **common))
        assert costly.duration > cheap.duration


class TestWorkerSeriesCap:
    """Per-worker sketch series collapse to one aggregate at mesoscale."""

    def _run(self, n, threshold):
        from repro.obs import MetricsRegistry, Observability

        obs = Observability(MetricsRegistry("cap"))
        run_fluentps(
            timing_config(
                n=n, iters=3, obs=obs, worker_series_threshold=threshold
            )
        )
        return obs.registry.sketch(
            "pull_latency_seconds",
            "sync-wait seconds per sPull round (mergeable sketch)",
        )

    def test_below_threshold_keeps_per_worker_series(self):
        sketch = self._run(n=6, threshold=6)
        assert len(sketch.label_sets()) == 6
        for w in range(6):
            assert sketch.count(worker=w) == 3

    def test_above_threshold_registry_stays_bounded(self):
        sketch = self._run(n=6, threshold=4)
        # One aggregate series regardless of worker count: the registry
        # no longer grows with N.
        assert len(sketch.label_sets()) == 1
        assert sketch.count(worker="all") == 6 * 3
        # The aggregate is exactly the merge of what per-worker series
        # would have held (same total population).
        merged = sketch.merged()
        assert merged is not None and merged.count == 6 * 3

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="worker_series_threshold"):
            timing_config(worker_series_threshold=0)
