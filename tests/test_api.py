"""Tests for the ParameterServerSystem public API."""

import numpy as np
import pytest

from repro.core.api import ParameterServerSystem
from repro.core.models import asp, bsp, ssp
from repro.core.server import ExecutionMode


def make_system(tiny_spec, n_workers=2, n_servers=2, sync=None, init=None, **kw):
    init = init if init is not None else np.zeros(tiny_spec.total_elements)
    return ParameterServerSystem(
        tiny_spec, init, n_workers, n_servers, sync or ssp(2),
        ExecutionMode.LAZY, **kw,
    )


class TestConstruction:
    def test_init_params_scattered_and_gathered(self, tiny_spec, rng):
        init = rng.normal(size=tiny_spec.total_elements)
        system = make_system(tiny_spec, init=init)
        np.testing.assert_allclose(system.current_params(), init)

    def test_wrong_init_shape_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            make_system(tiny_spec, init=np.zeros(3))

    def test_per_server_models(self, tiny_spec):
        system = make_system(tiny_spec, n_servers=2, sync=[ssp(2), asp()])
        assert system.servers[0].model.name.startswith("ssp")
        assert system.servers[1].model.name == "asp"

    def test_model_count_mismatch_rejected(self, tiny_spec):
        with pytest.raises(ValueError):
            make_system(tiny_spec, n_servers=2, sync=[ssp(2)])

    def test_describe(self, tiny_spec):
        assert "2 workers x 2 servers" in make_system(tiny_spec).describe()


class TestPushPull:
    def test_mean_update_applied(self, tiny_spec):
        system = make_system(tiny_spec, n_workers=2)
        d = tiny_spec.total_elements
        system.s_push(0, 0, np.full(d, 2.0))
        system.s_push(1, 0, np.full(d, 4.0))
        np.testing.assert_allclose(system.current_params(), np.full(d, 3.0))

    def test_pull_assembles_full_vector(self, tiny_spec, rng):
        init = rng.normal(size=tiny_spec.total_elements)
        system = make_system(tiny_spec, n_workers=1, init=init)
        system.s_push(0, 0, np.zeros_like(init))
        results = []
        system.s_pull(0, 0, results.append)
        assert len(results) == 1
        np.testing.assert_allclose(results[0].params, init)
        assert results[0].max_missing == 0

    def test_pull_callback_deferred_until_all_servers(self, tiny_spec):
        # One server runs SSP(1) (will delay), the other ASP (immediate):
        # the callback must wait for the slow shard.
        system = make_system(tiny_spec, n_workers=2, sync=[ssp(1), asp()])
        results = []
        system.s_push(0, 0, np.zeros(tiny_spec.total_elements))
        system.s_pull(0, 0, results.append)
        assert results  # 0 < 0+1 on shard 0: immediate after all
        system.s_push(0, 1, np.zeros(tiny_spec.total_elements))
        system.s_pull(0, 1, results.append)
        assert len(results) == 1  # shard 0 delayed the second pull
        system.s_push(1, 0, np.zeros(tiny_spec.total_elements))
        assert len(results) == 1  # lazy: released only at full catch-up
        system.s_push(1, 1, np.zeros(tiny_spec.total_elements))
        assert len(results) == 2
        assert results[1].replies[0].missing == 0

    def test_buffered_count(self, tiny_spec):
        system = make_system(tiny_spec, n_workers=2, sync=ssp(1))
        system.s_push(0, 0, np.zeros(tiny_spec.total_elements))
        system.s_push(0, 1, np.zeros(tiny_spec.total_elements))
        system.s_pull(0, 1, lambda r: None)
        assert system.total_buffered() == system.n_servers

    def test_merged_metrics(self, tiny_spec):
        system = make_system(tiny_spec, n_workers=1)
        system.s_push(0, 0, np.zeros(tiny_spec.total_elements))
        system.s_pull(0, 0, lambda r: None)
        m = system.merged_metrics()
        assert m.pushes == system.n_servers
        assert m.pulls == system.n_servers


class TestSetcond:
    def test_set_cond_pull_predicate(self, tiny_spec):
        system = make_system(tiny_spec, n_workers=1, sync=asp())
        # Install a never-respond condition on server 0.
        system.set_cond_pull(0, lambda view: False)
        system.s_push(0, 0, np.zeros(tiny_spec.total_elements))
        results = []
        system.s_pull(0, 0, results.append)
        assert results == []  # shard 0 blocks the aggregate forever

    def test_set_cond_push_predicate(self, tiny_spec):
        system = make_system(tiny_spec, n_workers=2, sync=bsp())
        # Quorum of 1 on both servers: frontier advances on first push.
        for m in range(system.n_servers):
            system.set_cond_push(m, lambda view: view.pushed(view.v_train) >= 1)
        system.s_push(0, 0, np.zeros(tiny_spec.total_elements))
        assert all(s.v_train == 1 for s in system.servers)

    def test_set_cond_accepts_condition_objects(self, tiny_spec):
        from repro.core.conditions import AllPushedPush, SSPPull

        system = make_system(tiny_spec)
        system.set_cond_pull(0, SSPPull(7))
        system.set_cond_push(0, AllPushedPush())
        assert system.servers[0].pull_con.staleness() == 7

    def test_runtime_model_switch(self, tiny_spec):
        """The paper's runtime flexibility: swap SSP -> PSSP mid-training."""
        system = make_system(tiny_spec, n_workers=2, sync=ssp(1))
        z = np.zeros(tiny_spec.total_elements)
        system.s_push(0, 0, z)
        system.s_push(1, 0, z)
        from repro.core.conditions import PSSPPull
        from repro.core.pssp import ConstantProbability

        for m in range(system.n_servers):
            system.set_cond_pull(m, PSSPPull(1, ConstantProbability(0.0)))
        # With c=0 (ASP-like), a far-ahead pull responds immediately.
        system.s_push(0, 1, z)
        system.s_push(0, 2, z)
        results = []
        system.s_pull(0, 2, results.append)
        assert results


class TestClock:
    def test_clock_propagates_to_servers(self, tiny_spec):
        system = make_system(tiny_spec, n_workers=2, sync=ssp(1))
        t = {"now": 0.0}
        system.set_clock(lambda: t["now"])
        z = np.zeros(tiny_spec.total_elements)
        system.s_push(0, 0, z)
        system.s_push(0, 1, z)
        system.s_pull(0, 1, lambda r: None)
        t["now"] = 3.0
        system.s_push(1, 0, z)
        system.s_push(1, 1, z)
        waited = system.merged_metrics().dpr_wait_total
        assert waited == pytest.approx(3.0 * system.n_servers)
