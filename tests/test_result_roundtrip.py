"""Property tests: result records survive JSON round trips losslessly.

The run cache and the sweep executor's worker processes both transport
``ExperimentResult`` as JSON, so ``loads(dumps(x)) == x`` is what makes
cached and pooled runs byte-identical to inline ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import ExperimentResult
from repro.utils.records import RunRecord, SeriesRecord

# JSON-native scalars a result row may carry.  Floats are restricted to
# finite values: json.dumps rejects NaN/inf under allow_nan=False and
# NaN breaks == anyway.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
)

_names = st.text(min_size=1, max_size=30)

_metrics = st.dictionaries(
    _names, st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=4
)

_run_records = st.builds(
    RunRecord,
    name=_names,
    params=st.dictionaries(_names, _scalars, max_size=3),
    metrics=_metrics,
)

_series_records = st.builds(
    SeriesRecord,
    name=_names,
    x=st.lists(st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=6),
    y=st.lists(st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=6),
    x_label=_names,
    y_label=_names,
)

_experiment_results = st.builds(
    ExperimentResult,
    experiment=_names,
    headers=st.lists(_names, max_size=4),
    rows=st.lists(st.lists(_scalars, max_size=4), max_size=4),
    records=st.lists(_run_records, max_size=3),
    series=st.lists(_series_records, max_size=3),
    notes=st.lists(st.text(max_size=30), max_size=3),
)


@settings(max_examples=100)
@given(_run_records)
def test_run_record_round_trips(rec):
    assert RunRecord.from_json(rec.to_json()) == rec


@settings(max_examples=100)
@given(_series_records)
def test_series_record_round_trips(series):
    assert SeriesRecord.from_json(series.to_json()) == series


@settings(max_examples=100)
@given(_experiment_results)
def test_experiment_result_round_trips(result):
    assert ExperimentResult.from_json(result.to_json()) == result


@settings(max_examples=100)
@given(_experiment_results)
def test_json_form_is_stable(result):
    # dumps(loads(dumps(x))) == dumps(x): byte-stable across cache hops.
    once = result.to_json()
    assert ExperimentResult.from_json(once).to_json() == once
