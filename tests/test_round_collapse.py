"""Differential tests for the closed-form round fast-forward.

The round collapse (docs/PERFORMANCE.md, "Closed-form round fast-forward
and the cohort state table") must be *bit-identical* to the event path
it replaces: same delivery traces, same protocol instant streams, same
metrics, same finish times — in every engine regime (calendar vs heap,
elision on vs off) and in both vector mode (no observability) and
handler mode (observability without a causal trace).  Every test here
runs the same configuration twice — fast path vs ``round_collapse=False``
oracle — and compares exhaustively.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import bsp, pssp, ssp
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.sim.cluster import cpu_cluster, gpu_cluster_p2
from repro.sim.runner import FluentPSSimRunner, SimConfig, _seq_cascade
from repro.sim.stragglers import ComputeModel, DeterministicCompute, cpu_cluster_compute


class _InjectedStraggler(ComputeModel):
    """Deterministic compute with one straggler draw at (worker, iter)."""

    def __init__(self, worker: int, iteration: int, slow_factor: float = 6.0):
        self.worker = worker
        self.iteration = iteration
        self.slow_factor = slow_factor

    def sample(self, worker, iteration, base_time, rng):
        t = base_time
        if worker == self.worker and iteration == self.iteration:
            t *= self.slow_factor
        return t

    def mean_factor(self) -> float:
        return 1.0


def _wire_trace_key(msg):
    # Stable wire fields only: collapsed-round hook messages carry
    # synthesized ids (msg_id/cause_id = -1), so identity must rest on
    # src/dst/tag/size and the two analytic times.
    return (msg.src, msg.dst, msg.tag, msg.size_bytes, msg.send_time, msg.deliver_time)


def _run(cfg_kwargs, collapse, obs=None, hooks=True):
    cfg = SimConfig(
        **cfg_kwargs,
        round_collapse=collapse,
        obs=obs if obs is not None else NULL_OBS,
    )
    runner = FluentPSSimRunner(cfg)
    rec = []
    if hooks:
        runner.net.on_delivery(lambda m: rec.append(_wire_trace_key(m)))
    result = runner.run()
    return runner, result, sorted(rec)


def _fingerprint(runner, result, rec):
    """Everything the oracle comparison cares about, as one JSON string."""
    return json.dumps(
        {
            "trace": rec,
            "duration": result.duration,
            "finish": runner._finish_times,
            "metrics": [
                {
                    **s.metrics.summary(),
                    "staleness": sorted(s.metrics.staleness_hist.items()),
                }
                for s in runner.servers
            ],
            "net": [runner.net.total_messages, runner.net.total_bytes],
            "dispatch": [runner.server_msgs_inline, runner.server_msgs_drained],
            "spans": sorted(
                (a, k.value, v) for (a, k), v in runner.trace._totals.items()
            ),
        },
        sort_keys=True,
    )


def _assert_differential(cfg_kwargs, obs_factory=None, hooks=True):
    """Fast path vs oracle: bit-identical results, exact event census."""
    obs_a = obs_factory() if obs_factory else None
    obs_b = obs_factory() if obs_factory else None
    ra, resa, ta = _run(cfg_kwargs, None, obs=obs_a, hooks=hooks)
    rb, resb, tb = _run(cfg_kwargs, False, obs=obs_b, hooks=hooks)
    assert rb.engine.rounds_collapsed == 0
    assert _fingerprint(ra, resa, ta) == _fingerprint(rb, resb, tb)
    # The saved-event census is exact: fast-path events + credited
    # savings reproduce the oracle's event count to the event.
    assert (
        rb.engine.events_processed - ra.engine.events_processed
        == ra.engine.round_events_saved
    )
    if obs_a is not None:
        assert _instant_stream(obs_a) == _instant_stream(obs_b)
    return ra, rb


def _instant_stream(obs):
    # uid is a process-global server incarnation counter — it differs
    # between any two runner constructions in one process by design, so
    # it is the one argument stripped before comparing streams.
    return json.dumps(
        [
            [i.name, i.t, i.actor, {k: v for k, v in sorted(i.args.items()) if k != "uid"}]
            for i in obs.last_run.instants
        ]
    )


def _cell(preset, sync_name, compute_name, calendar, elide, n=12, m=3, iters=4, seed=7):
    cluster = cpu_cluster(n, n_servers=m) if preset == "cpu" else gpu_cluster_p2(n, m)
    sync = {"ssp3": ssp(3), "pssp": pssp(2, 0.5), "bsp": bsp()}[sync_name]
    compute = {
        "det": DeterministicCompute(),
        "lognorm": cpu_cluster_compute(n),
    }[compute_name]
    return dict(
        cluster=cluster,
        max_iter=iters,
        sync=sync,
        workload=alexnet_cifar_workload(),
        compute_model=compute,
        seed=seed,
        engine_calendar=calendar,
        engine_elide=elide,
    )


class TestVectorModeDifferential:
    """No observability: the collapse commits cohort analytics directly."""

    @given(
        preset=st.sampled_from(["cpu", "gpu_p2"]),
        sync_name=st.sampled_from(["ssp3", "pssp"]),
        compute_name=st.sampled_from(["det", "lognorm"]),
        calendar=st.booleans(),
        elide=st.booleans(),
        hooks=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=16, deadline=None)
    def test_bit_identical_vs_oracle(
        self, preset, sync_name, compute_name, calendar, elide, hooks, seed
    ):
        kwargs = _cell(preset, sync_name, compute_name, calendar, elide, seed=seed)
        _assert_differential(kwargs, hooks=hooks)

    def test_collapse_engages_on_homogeneous_cohort(self):
        kwargs = _cell("cpu", "ssp3", "lognorm", None, None, n=20, m=4, iters=6)
        ra, _rb = _assert_differential(kwargs)
        assert ra.engine.rounds_collapsed > 0
        assert ra.engine.round_events_saved > 0

    def test_full_collapse_leaves_no_events(self):
        kwargs = _cell("cpu", "ssp3", "det", None, None, iters=3)
        kwargs["base_compute_time"] = 5.0  # comm spread << compute: isolated
        ra, rb = _assert_differential(kwargs)
        assert ra.engine.rounds_collapsed == 3
        assert ra.engine.events_processed == 0
        assert rb.engine.events_processed == ra.engine.round_events_saved


class TestDevectorization:
    def test_single_midrun_straggler_exits_without_drift(self):
        """One straggler draw mid-run de-vectorizes back to the event
        path: earlier rounds stay collapsed, the straggler's round and
        everything after run event-by-event, and nothing drifts."""
        kwargs = _cell("cpu", "ssp3", "det", None, None, n=10, m=3, iters=6)
        kwargs["base_compute_time"] = 5.0
        kwargs["compute_model"] = _InjectedStraggler(worker=3, iteration=2)
        ra, _rb = _assert_differential(kwargs)
        assert 0 < ra.engine.rounds_collapsed < 6
        assert ra.engine.events_processed > 0  # the de-vectorized tail

    def test_straggler_in_round_zero_collapses_nothing(self):
        kwargs = _cell("cpu", "ssp3", "det", None, None, n=10, m=3, iters=3)
        kwargs["base_compute_time"] = 5.0
        kwargs["compute_model"] = _InjectedStraggler(worker=0, iteration=0)
        ra, _rb = _assert_differential(kwargs)
        assert ra.engine.rounds_collapsed == 0


class TestHandlerModeDifferential:
    """Observability without a causal trace: the collapse replays real
    server handlers in the analytic handle order, so protocol instants
    (S001-S016 replay), spans, and metrics all still come from the
    servers themselves."""

    @pytest.mark.parametrize("sync_name", ["ssp3", "pssp"])
    @pytest.mark.parametrize("calendar", [None, False])
    def test_instant_streams_identical(self, sync_name, calendar):
        kwargs = _cell("cpu", sync_name, "lognorm", calendar, None, n=14, m=3, iters=5)
        obs_factory = lambda: Observability(  # noqa: E731
            MetricsRegistry("collapse-test"), causal=False
        )
        ra, _rb = _assert_differential(kwargs, obs_factory=obs_factory)
        assert ra.engine.rounds_collapsed > 0

    def test_spans_identical(self):
        kwargs = _cell("cpu", "ssp3", "lognorm", None, None, n=14, m=3, iters=5)
        runs = []
        for collapse in (None, False):
            obs = Observability(MetricsRegistry("span-test"), causal=False)
            runner, _res, _t = _run(kwargs, collapse, obs=obs, hooks=False)
            runs.append(
                sorted(
                    (s.actor, s.kind.value, s.t0, s.t1, s.iteration)
                    for s in runner.trace.spans
                )
            )
        assert runs[0] == runs[1]


class TestEligibilityGates:
    def test_causal_observability_gates_collapse_off(self):
        # The ambient pytest fixture installs an Observability whose
        # captures carry a causal trace; collapse must stand down (the
        # vectorized commit cannot reproduce per-message causal spans).
        cfg = SimConfig(**_cell("cpu", "ssp3", "det", None, None))
        runner = FluentPSSimRunner(cfg)
        runner.run()
        assert runner.causal is not None
        assert runner.engine.rounds_collapsed == 0

    def test_bsp_is_ineligible(self):
        kwargs = _cell("cpu", "bsp", "det", None, None)
        kwargs["base_compute_time"] = 5.0
        ra, _rb = _assert_differential(kwargs)
        assert ra.engine.rounds_collapsed == 0

    def test_subclassed_runners_are_ineligible(self):
        # PS-Lite overrides the worker protocol (scheduler-gated grants)
        # but inherits run(); the cohort closed form models only the
        # stock protocol, so subclasses must keep the event path.
        from repro.baselines.pslite import PSLiteSimRunner

        kwargs = _cell("cpu", "ssp3", "det", None, None)
        kwargs["base_compute_time"] = 5.0
        cfg = SimConfig(**kwargs, obs=NULL_OBS)
        runner = PSLiteSimRunner(cfg)
        runner.run()
        assert runner.engine.rounds_collapsed == 0

    def test_oracle_flag_disables_engine_credit(self):
        kwargs = _cell("cpu", "ssp3", "det", None, None, iters=2)
        kwargs["base_compute_time"] = 5.0
        runner, _res, _t = _run(kwargs, False)
        assert not runner.engine.collapse_enabled or runner.engine.rounds_collapsed == 0
        assert runner.engine.rounds_collapsed == 0
        assert runner.engine.round_events_saved == 0


class TestSeqCascade:
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=300,
        ),
        cursor=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_exact_vs_scalar_recurrence(self, data, cursor):
        arrivals = np.sort(np.array([a for a, _h in data]))
        holds = np.array([h for _a, h in data])
        ends, final = _seq_cascade(arrivals, holds, cursor)
        c = cursor
        for i in range(len(data)):
            if arrivals[i] > c:
                c = arrivals[i]
            c = c + holds[i]
            assert ends[i] == c  # bit-identical, not approx
        assert final == c
