"""Exit-code and output-shape tests for ``python -m repro.analysis``."""

import json

import pytest

from repro.analysis.__main__ import (
    EXIT_EXPLORE,
    EXIT_LINT,
    EXIT_OK,
    EXIT_TRACE,
    main,
)

pytestmark = pytest.mark.no_sanitize


class TestLintExit:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text('"""Mod."""\nX = 1\n')
        assert main(["--lint", str(tmp_path)]) == EXIT_OK

    def test_lint_issue_exits_3_with_rule_id_first(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            '"""Mod."""\nimport time\n\ndef f():\n    return time.time()\n'
        )
        rc = main(["--lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == EXIT_LINT
        assert out.splitlines()[0] == "ANA001"


class TestTraceExit:
    def test_corrupt_trace_exits_5_with_rule_id_first(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        rc = main(["--check-trace", str(bad)])
        out = capsys.readouterr().out
        assert rc == EXIT_TRACE
        assert out.splitlines()[0] == "X002"


class TestReplayExit:
    def test_corrupt_choice_trace_exits_5(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = main(["--replay", str(bad)])
        out = capsys.readouterr().out
        assert rc == EXIT_TRACE
        assert out.splitlines()[0] == "X002"


class TestExploreExit:
    def test_small_clean_exploration_exits_zero(self, capsys):
        rc = main(
            [
                "--explore", "ssp",
                "--explore-budget", "5",
                "--explore-target", "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == EXIT_OK
        assert "explore[ssp]" in out
        assert "DPOR pruning" in out

    def test_mutated_exploration_exits_6_and_writes_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "cex.json"
        rc = main(
            [
                "--explore", "ssp",
                "--explore-iters", "6",
                "--spread", "1.0",
                "--mutation", "weak-staleness",
                "--explore-budget", "10",
                "--trace-out", str(trace_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == EXIT_EXPLORE
        assert out.splitlines()[0] == "S004"
        doc = json.loads(trace_path.read_text())
        assert doc["violations"] == ["S004"]
        assert doc["config"]["mutation"] == "weak-staleness"

        # And the written trace replays to exit 0 (reproduced).
        rc2 = main(["--replay", str(trace_path)])
        out2 = capsys.readouterr().out
        assert rc2 == EXIT_OK
        assert "reproduced" in out2
