"""Documentation-rot guards: README/DESIGN references must stay valid."""

import re
from pathlib import Path


ROOT = Path(__file__).resolve().parent.parent


class TestReadme:
    def test_exists_with_key_sections(self):
        text = (ROOT / "README.md").read_text()
        for heading in ("## Install", "## Quickstart", "## Architecture",
                        "## Tests and benchmarks"):
            assert heading in text

    def test_listed_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.finditer(r"python (examples/\w+\.py)", text):
            assert (ROOT / match.group(1)).exists(), match.group(1)

    def test_quickstart_snippet_runs(self):
        """Execute the README's quickstart code block (shortened)."""
        text = (ROOT / "README.md").read_text()
        block = re.search(r"```python\n(.*?)```", text, re.DOTALL).group(1)
        block = block.replace("max_iter=400", "max_iter=30")
        namespace = {}
        exec(compile(block, "<readme>", "exec"), namespace)  # noqa: S102

    def test_architecture_modules_exist(self):
        text = (ROOT / "README.md").read_text()
        arch = text.split("## Architecture")[1].split("##")[0]
        for match in re.finditer(r"^\s{4}(\w+\.py)", arch, re.MULTILINE):
            name = match.group(1)
            hits = list((ROOT / "src" / "repro").rglob(name))
            assert hits, f"README architecture lists missing module {name}"


class TestDesignAndExperiments:
    def test_design_exists_with_inventory(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "System inventory" in text
        assert "Per-experiment index" in text
        assert "Normative semantics" in text

    def test_design_module_paths_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.finditer(r"`(repro/[\w/]+\.py)`", text):
            assert (ROOT / "src" / match.group(1)).exists(), match.group(1)

    def test_experiments_covers_every_bench(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in (ROOT / "benchmarks").glob("test_*.py"):
            if bench.name.startswith("test_ablation"):
                continue  # grouped under one Ablations section
            assert bench.name in text, f"EXPERIMENTS.md missing {bench.name}"

    def test_cli_ids_documented_exist(self):
        from repro.bench.__main__ import EXPERIMENTS

        text = (ROOT / "EXPERIMENTS.md").read_text()
        for used in re.findall(r"--only ([\w\- ]+)", text):
            for ident in used.split():
                assert ident in EXPERIMENTS, ident
