"""Tests for the span/counter trace recorder."""

import pytest

from repro.sim.trace import COMM_KINDS, Span, SpanKind, TraceRecorder


class TestSpans:
    def test_record_and_total(self):
        tr = TraceRecorder()
        tr.record_span("w0", SpanKind.COMPUTE, 0.0, 2.0)
        tr.record_span("w0", SpanKind.COMPUTE, 3.0, 4.0)
        tr.record_span("w0", SpanKind.PULL, 2.0, 3.0)
        assert tr.total("w0", SpanKind.COMPUTE) == pytest.approx(3.0)
        assert tr.count("w0", SpanKind.COMPUTE) == 2
        assert tr.end_time == 4.0

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record_span("w", SpanKind.PUSH, 2.0, 1.0)

    def test_jitter_inversion_clipped_to_empty(self):
        # A sub-epsilon inversion is float clock jitter, not a bug: the
        # span is clipped to zero duration instead of raising.
        tr = TraceRecorder()
        t0 = 100.0
        tr.record_span("w", SpanKind.PUSH, t0, t0 - 1e-12 * t0)
        assert tr.total("w", SpanKind.PUSH) == 0.0
        assert tr.spans[0].t1 == tr.spans[0].t0 == t0
        assert tr.end_time == t0

    def test_real_inversion_still_raises(self):
        tr = TraceRecorder()
        with pytest.raises(ValueError, match="ends before"):
            tr.record_span("w", SpanKind.PUSH, 100.0, 99.9)

    def test_comm_vs_compute_split(self):
        tr = TraceRecorder()
        tr.record_span("w0", SpanKind.COMPUTE, 0, 5)
        tr.record_span("w0", SpanKind.PUSH, 5, 6)
        tr.record_span("w0", SpanKind.PULL, 6, 8)
        tr.record_span("w0", SpanKind.BLOCKED, 8, 9)
        assert tr.compute_time() == pytest.approx(5.0)
        assert tr.comm_time() == pytest.approx(4.0)
        assert set(COMM_KINDS) == {SpanKind.PUSH, SpanKind.PULL, SpanKind.BLOCKED}

    def test_actor_filtering(self):
        tr = TraceRecorder()
        tr.record_span("w0", SpanKind.COMPUTE, 0, 1)
        tr.record_span("w1", SpanKind.COMPUTE, 0, 2)
        tr.record_span("server0", SpanKind.SERVER_APPLY, 0, 3)
        assert tr.compute_time(["w0"]) == pytest.approx(1.0)
        assert tr.compute_time(["w0", "w1"]) == pytest.approx(3.0)
        assert tr.actors() == ["server0", "w0", "w1"]

    def test_breakdown(self):
        tr = TraceRecorder()
        tr.record_span("w0", SpanKind.COMPUTE, 0, 1)
        b = tr.breakdown("w0")
        assert b["compute"] == pytest.approx(1.0)
        assert b["pull"] == 0.0

    def test_mean_breakdown(self):
        tr = TraceRecorder()
        tr.record_span("w0", SpanKind.COMPUTE, 0, 2)
        tr.record_span("w1", SpanKind.COMPUTE, 0, 4)
        mb = tr.mean_breakdown(["w0", "w1"])
        assert mb["compute"] == pytest.approx(3.0)
        with pytest.raises(ValueError):
            tr.mean_breakdown([])

    def test_counters(self):
        tr = TraceRecorder()
        tr.incr("dprs")
        tr.incr("dprs", 2)
        assert tr.counters["dprs"] == 3

    def test_span_duration(self):
        assert Span("w", SpanKind.PULL, 1.0, 3.5).duration == pytest.approx(2.5)


class TestLeanMode:
    def test_totals_without_spans(self):
        tr = TraceRecorder(keep_spans=False)
        tr.record_span("w0", SpanKind.COMPUTE, 0, 2)
        assert tr.total("w0", SpanKind.COMPUTE) == pytest.approx(2.0)
        assert tr.spans == []
        with pytest.raises(ValueError):
            tr.render_timeline()


class TestTimeline:
    def test_render_contains_glyphs(self):
        tr = TraceRecorder()
        tr.record_span("w0", SpanKind.COMPUTE, 0, 5)
        tr.record_span("w0", SpanKind.PULL, 5, 10)
        out = tr.render_timeline(width=20)
        assert "#" in out and "<" in out
        assert "w0" in out
        assert "legend" in out

    def test_render_respects_actor_order(self):
        tr = TraceRecorder()
        tr.record_span("b", SpanKind.COMPUTE, 0, 1)
        tr.record_span("a", SpanKind.COMPUTE, 0, 1)
        out = tr.render_timeline(actors=["b", "a"], width=10)
        lines = out.splitlines()
        assert lines[1].startswith("b")
        assert lines[2].startswith("a")


class TestTimelineHeader:
    def test_header_right_aligns_t_max(self):
        tr = TraceRecorder()
        tr.record_span("w0", SpanKind.COMPUTE, 0, 8.0)
        out = tr.render_timeline(width=40)
        header, row = out.splitlines()[0], out.splitlines()[1]
        # rows are label + '|' + width cells + '|'; the t_max label must
        # end at the last cell column, and '0' sits over the first cell
        assert len(header) == len(row) - 1
        assert header.endswith("8s")
        label_w = row.index("|")
        assert header[label_w + 1] == "0"

    def test_narrow_width_rejected(self):
        tr = TraceRecorder()
        tr.record_span("w0", SpanKind.COMPUTE, 0, 1)
        with pytest.raises(ValueError, match="width"):
            tr.render_timeline(width=9)
