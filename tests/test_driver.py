"""Tests for the virtual-clock training driver."""

import numpy as np
import pytest

from repro.core.api import ParameterServerSystem
from repro.core.driver import VirtualClockDriver
from repro.core.models import asp, bsp, drop_stragglers, dsps, dynamic_pssp, pssp, ssp
from repro.core.server import ExecutionMode
from repro.sim.stragglers import (
    DeterministicCompute,
    ExponentialTailCompute,
    HeterogeneousCompute,
)
from repro.sim.trace import SpanKind

ALL_MODELS = [
    ("bsp", lambda n: bsp()),
    ("asp", lambda n: asp()),
    ("ssp", lambda n: ssp(2)),
    ("dsps", lambda n: dsps(s0=2)),
    ("drop", lambda n: drop_stragglers(n, n_t=max(1, n - 1))),
    ("pssp", lambda n: pssp(2, 0.5)),
    ("dpssp", lambda n: dynamic_pssp(2, 0.7)),
]


def run_driver(spec, step, sync, execution=ExecutionMode.LAZY, n=4, servers=2,
               iters=40, compute=None, seed=0, **kw):
    system = ParameterServerSystem(
        spec, np.zeros(spec.total_elements), n, servers, sync, execution, seed=seed
    )
    driver = VirtualClockDriver(
        system, step, max_iter=iters,
        compute_model=compute or ExponentialTailCompute(0.2, 2.0), seed=seed + 1, **kw
    )
    return driver.run()


class TestCompletion:
    @pytest.mark.parametrize("name,factory", ALL_MODELS)
    @pytest.mark.parametrize("execution", list(ExecutionMode))
    def test_all_models_terminate(self, name, factory, execution, quadratic_problem):
        spec, target, make_step = quadratic_problem
        n = 4
        res = run_driver(spec, make_step(), factory(n), execution=execution, n=n)
        assert res.iterations == 40
        assert res.metrics.pushes == 40 * n * 2  # per shard server

    def test_converges_to_target(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        res = run_driver(spec, make_step(lr=0.3), ssp(2), iters=80)
        assert np.linalg.norm(res.final_params - target) < 0.05

    def test_deterministic_under_seed(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        a = run_driver(spec, make_step(noise=0.1), pssp(2, 0.5), seed=3)
        b = run_driver(spec, make_step(noise=0.1), pssp(2, 0.5), seed=3)
        assert a.duration == b.duration
        np.testing.assert_array_equal(a.final_params, b.final_params)
        assert a.metrics.dprs == b.metrics.dprs

    def test_different_seed_differs(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        a = run_driver(spec, make_step(noise=0.1), pssp(2, 0.5), seed=3)
        b = run_driver(spec, make_step(noise=0.1), pssp(2, 0.5), seed=4)
        assert a.duration != b.duration

    def test_invalid_config(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        system = ParameterServerSystem(
            spec, np.zeros(spec.total_elements), 2, 1, ssp(1), ExecutionMode.LAZY
        )
        with pytest.raises(ValueError):
            VirtualClockDriver(system, make_step(), max_iter=0)
        with pytest.raises(ValueError):
            VirtualClockDriver(system, make_step(), max_iter=1, base_compute_time=0)


class TestTimingSemantics:
    def test_bsp_duration_tracks_sum_of_maxima(self, quadratic_problem):
        """Under BSP every iteration ends at the slowest worker's finish,
        so the total is at least the sum of per-iteration maxima."""
        spec, target, make_step = quadratic_problem
        res = run_driver(
            spec, make_step(), bsp(), n=4, iters=30,
            compute=ExponentialTailCompute(0.3, 2.0), seed=9,
        )
        asp_res = run_driver(
            spec, make_step(), asp(), n=4, iters=30,
            compute=ExponentialTailCompute(0.3, 2.0), seed=9,
        )
        assert res.duration >= asp_res.duration

    def test_asp_never_blocks(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        res = run_driver(spec, make_step(), asp(), n=4, iters=30)
        assert res.blocked_time == 0.0
        assert res.metrics.dprs == 0

    def test_ssp_staleness_bounded_lazy(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        res = run_driver(
            spec, make_step(), ssp(3), n=6, iters=60,
            compute=HeterogeneousCompute(6, spread=0.5),
        )
        assert res.metrics.max_staleness() <= 3

    def test_bsp_staleness_zero(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        res = run_driver(spec, make_step(), bsp(), n=4, iters=30)
        assert res.metrics.max_staleness() == 0

    def test_deterministic_compute_no_blocks_under_ssp(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        res = run_driver(
            spec, make_step(), ssp(2), n=4, iters=30, compute=DeterministicCompute()
        )
        assert res.metrics.dprs == 0

    def test_compute_spans_recorded(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        res = run_driver(spec, make_step(), asp(), n=2, iters=10,
                         compute=DeterministicCompute(), keep_spans=True)
        assert res.trace.count("worker0", SpanKind.COMPUTE) == 10
        assert res.compute_time == pytest.approx(20.0)


class TestEvalHooks:
    def test_eval_series_recorded(self, quadratic_problem):
        spec, target, make_step = quadratic_problem

        def eval_fn(params):
            return -float(np.linalg.norm(params - target))

        res = run_driver(
            spec, make_step(lr=0.3), ssp(2), iters=40,
            eval_fn=eval_fn, eval_every=10,
        )
        assert len(res.eval_by_iteration) == 4
        assert list(res.eval_by_iteration.x) == [10, 20, 30, 40]
        # Error shrinks over training.
        assert res.eval_by_iteration.y[-1] > res.eval_by_iteration.y[0]
        assert res.eval_by_time.x == sorted(res.eval_by_time.x)

    def test_dprs_per_100_uses_paper_convention(self, quadratic_problem):
        spec, target, make_step = quadratic_problem
        res = run_driver(
            spec, make_step(), ssp(1), n=6, iters=50,
            compute=HeterogeneousCompute(6, spread=0.5),
        )
        assert res.dprs_per_100_iterations() == pytest.approx(
            100.0 * res.metrics.dprs / 50
        )
