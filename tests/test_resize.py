"""Tests for elastic server-count resizing (FlexPS-style stage boundary)."""

import numpy as np
import pytest

from repro.bench.workloads import blobs_task
from repro.core import (
    ExecutionMode,
    ParameterServerSystem,
    VirtualClockDriver,
    asp,
    ssp,
)
from repro.core.keyspace import ElasticSlicer


def make_system(task, n_servers=4, sync=None):
    return ParameterServerSystem(
        task.spec, task.init_params, 4, n_servers, sync or ssp(2),
        ExecutionMode.LAZY, slicer=ElasticSlicer(chunk_elements=64), seed=0,
    )


@pytest.fixture
def task():
    return blobs_task(4, n_train=400, n_test=100, seed=1)


class TestResize:
    def test_parameters_preserved(self, task):
        system = make_system(task)
        VirtualClockDriver(system, task.step_fn, max_iter=30, seed=1).run()
        before = system.current_params()
        system.resize(2)
        np.testing.assert_allclose(system.current_params(), before)
        assert system.n_servers == 2
        assert len(system.servers) == 2

    def test_training_continues_after_resize(self, task):
        system = make_system(task)
        VirtualClockDriver(system, task.step_fn, max_iter=50, seed=1).run()
        acc_mid = task.eval_fn(system.current_params())
        system.resize(2)
        VirtualClockDriver(system, task.step_fn, max_iter=80, seed=2).run()
        acc_end = task.eval_fn(system.current_params())
        assert acc_end > 0.4
        assert np.isfinite(system.current_params()).all()
        assert acc_end >= acc_mid - 0.15  # no catastrophic loss across stages

    def test_grow_and_shrink(self, task):
        system = make_system(task, n_servers=2)
        system.resize(5)
        assert system.n_servers == 5
        system.scheduler.assignment.validate_partition(task.spec)
        system.resize(3)
        system.scheduler.assignment.validate_partition(task.spec)

    def test_metrics_carried_across_stages(self, task):
        system = make_system(task)
        VirtualClockDriver(system, task.step_fn, max_iter=20, seed=1).run()
        pushes_stage1 = system.merged_metrics().pushes
        system.resize(2)
        VirtualClockDriver(system, task.step_fn, max_iter=20, seed=2).run()
        total = system.merged_metrics().pushes
        assert total == pushes_stage1 + 20 * 4 * 2

    def test_resize_requires_quiescence(self, task):
        system = make_system(task, sync=ssp(1))
        z = np.zeros(task.spec.total_elements)
        system.s_push(0, 0, z)
        system.s_push(0, 1, z)
        system.s_pull(0, 1, lambda r: None)  # buffered DPR
        with pytest.raises(RuntimeError, match="quiescence"):
            system.resize(2)

    def test_resize_rejects_model_lists(self, task):
        system = ParameterServerSystem(
            task.spec, task.init_params, 4, 2, [ssp(2), asp()],
            ExecutionMode.LAZY, seed=0,
        )
        with pytest.raises(ValueError, match="per-server model lists"):
            system.resize(3)

    def test_invalid_count(self, task):
        with pytest.raises(ValueError):
            make_system(task).resize(0)

    def test_moved_bytes_reported(self, task):
        system = make_system(task)
        moved = system.resize(2)
        assert moved >= 0
        assert system.scheduler.total_moved_bytes >= moved
