"""Stateful property tests: ShardServer under random legal histories.

Hypothesis drives random interleavings of pushes and pulls from N
workers against every synchronization model and both execution modes,
checking Algorithm 1's invariants after each step and liveness (every
buffered pull answered) once all workers reach a common progress.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.models import asp, bsp, drop_stragglers, dsps, dynamic_pssp, pssp, ssp
from repro.core.server import ExecutionMode, ShardServer

N_WORKERS = 4

#: (name, factory, push quorum): the frontier may only pass iteration v
#: once `quorum` workers have pushed it.
MODEL_FACTORIES = [
    ("bsp", lambda: bsp(), N_WORKERS),
    ("asp", lambda: asp(), N_WORKERS),
    ("ssp1", lambda: ssp(1), N_WORKERS),
    ("ssp3", lambda: ssp(3), N_WORKERS),
    ("dsps", lambda: dsps(s0=2, s_min=1, s_max=6, window=16), N_WORKERS),
    ("drop", lambda: drop_stragglers(N_WORKERS, n_t=3), 3),
    ("pssp", lambda: pssp(2, 0.5), N_WORKERS),
    ("dpssp", lambda: dynamic_pssp(2, 0.7), N_WORKERS),
]


@st.composite
def histories(draw):
    """A random schedule: each entry picks a worker; the worker performs
    its next protocol action (push i, then pull i, alternating)."""
    length = draw(st.integers(min_value=4, max_value=120))
    return [draw(st.integers(min_value=0, max_value=N_WORKERS - 1)) for _ in range(length)]


def run_history(model_factory, execution, schedule, seed, quorum=N_WORKERS):
    server = ShardServer(
        0, N_WORKERS, model_factory(), execution, rng=np.random.default_rng(seed)
    )
    answered = [0] * N_WORKERS
    pushed = [-1] * N_WORKERS  # last pushed iteration
    pulled = [-1] * N_WORKERS  # last pull issued
    waiting = [False] * N_WORKERS  # blocked in a DPR
    prev_v_train = server.v_train

    def check_invariants():
        nonlocal prev_v_train
        # Frontier is monotone and never passes the quorum-th pusher
        # (the slowest worker for all-pushed models, the N_t-th for
        # drop-stragglers).
        assert server.v_train >= prev_v_train
        quorum_progress = sorted(server.worker_progress, reverse=True)[quorum - 1]
        assert server.v_train <= quorum_progress + 1
        prev_v_train = server.v_train
        m = server.metrics
        assert m.immediate_pulls + m.dprs == m.pulls
        # Every answered pull was either immediate or a released DPR.
        assert sum(answered) <= m.pulls

    for w in schedule:
        if waiting[w]:
            continue  # a blocked worker issues nothing (Algorithm 1 line 5)
        if pushed[w] == pulled[w]:
            # next action: push iteration pushed+1
            server.handle_push(w, pushed[w] + 1)
            pushed[w] += 1
        else:
            # next action: pull for the just-pushed iteration
            target = pushed[w]

            def respond(reply, w=w):
                answered[w] += 1
                waiting[w] = False
                assert reply.progress == reply.progress  # well-formed
                assert reply.missing >= 0

            immediate = server.handle_pull(w, target, respond)
            pulled[w] = target
            if not immediate:
                waiting[w] = True
        check_invariants()

    # Liveness: drive everyone to the max progress; all DPRs must flush.
    top = max(pushed)
    for w in range(N_WORKERS):
        while pushed[w] < top:
            if not waiting[w] and pushed[w] > pulled[w]:
                # complete the pending pull step first
                def respond(reply, w=w):
                    answered[w] += 1
                    waiting[w] = False

                if not server.handle_pull(w, pushed[w], respond):
                    waiting[w] = True
                pulled[w] = pushed[w]
            server.handle_push(w, pushed[w] + 1)
            pushed[w] += 1
            check_invariants()
    # One final full round so every worker has pushed `top`:
    # after that the frontier reaches top+1 and releases everything.
    for w in range(N_WORKERS):
        assert pushed[w] == top
    assert server.v_train == top + 1
    assert server.buffered_pulls == 0, (
        f"{server.buffered_pulls} pulls left buffered under "
        f"{server.model.name}/{execution.value}"
    )
    return server


@pytest.mark.parametrize("model_name,factory,quorum", MODEL_FACTORIES)
@pytest.mark.parametrize("execution", list(ExecutionMode))
class TestServerStateful:
    @given(schedule=histories(), seed=st.integers(0, 1000))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_invariants_and_liveness(self, model_name, factory, quorum, execution,
                                     schedule, seed):
        run_history(factory, execution, schedule, seed, quorum=quorum)
