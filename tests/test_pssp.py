"""Tests for PSSP probability models and matched-pair helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pssp import (
    ConstantProbability,
    DynamicProbability,
    SignificanceView,
    effective_staleness_pmf,
    equivalent_ssp_threshold,
    expected_effective_staleness,
    gradient_significance,
    matched_constant,
    sample_effective_staleness,
    significance_alpha,
)


class TestConstantProbability:
    def test_zero_below_threshold(self):
        p = ConstantProbability(0.4)
        assert p.probability(3, 2) == 0.0
        assert p.probability(3, 3) == 0.4
        assert p.probability(3, 50) == 0.4

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            ConstantProbability(1.5)
        with pytest.raises(ValueError):
            ConstantProbability(-0.1)

    def test_describe(self):
        assert "0.4" in ConstantProbability(0.4).describe()


class TestDynamicProbability:
    def test_half_alpha_at_threshold(self):
        p = DynamicProbability(0.8)
        assert p.probability(3, 3) == pytest.approx(0.4)

    def test_approaches_alpha(self):
        p = DynamicProbability(0.8)
        assert p.probability(3, 60) == pytest.approx(0.8, abs=1e-6)

    def test_monotone_in_gap(self):
        p = DynamicProbability(1.0)
        probs = [p.probability(3, k) for k in range(3, 20)]
        assert probs == sorted(probs)

    def test_zero_below_threshold(self):
        assert DynamicProbability(1.0).probability(3, 2) == 0.0

    def test_callable_alpha_uses_significance(self):
        alpha = significance_alpha(scale=10.0, floor=0.1, ceil=1.0)
        p = DynamicProbability(alpha)
        low = p.probability(3, 3, SignificanceView(0.001, 3, 3))
        high = p.probability(3, 3, SignificanceView(0.1, 3, 3))
        assert high > low
        assert low == pytest.approx(0.05)  # floor 0.1 / 2

    def test_callable_alpha_requires_view(self):
        p = DynamicProbability(lambda v: 0.5)
        with pytest.raises(ValueError):
            p.probability(3, 5, None)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            DynamicProbability(1.5)
        with pytest.raises(TypeError):
            DynamicProbability("big")

    @given(
        s=st.integers(min_value=0, max_value=10),
        gap=st.integers(min_value=0, max_value=100),
        alpha=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_probability_always_valid(self, s, gap, alpha):
        p = DynamicProbability(alpha).probability(s, gap)
        assert 0.0 <= p <= alpha + 1e-12


class TestSignificance:
    def test_ratio(self):
        assert gradient_significance(1.0, 10.0) == pytest.approx(0.1, rel=1e-6)

    def test_zero_weights_safe(self):
        assert gradient_significance(1.0, 0.0) > 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gradient_significance(-1.0, 1.0)

    def test_alpha_bounds_validated(self):
        with pytest.raises(ValueError):
            significance_alpha(floor=0.9, ceil=0.5)


class TestMatchedPairs:
    def test_equivalent_threshold(self):
        assert equivalent_ssp_threshold(3, 0.5) == pytest.approx(4.0)
        assert equivalent_ssp_threshold(3, 0.1) == pytest.approx(12.0)

    def test_matched_constant_inverse(self):
        for c in (0.1, 0.25, 0.5, 1.0):
            s_prime = equivalent_ssp_threshold(3, c)
            assert matched_constant(3, s_prime) == pytest.approx(c)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            equivalent_ssp_threshold(3, 0.0)
        with pytest.raises(ValueError):
            matched_constant(5, 3)

    @given(
        s=st.integers(min_value=0, max_value=20),
        c=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, s, c):
        assert matched_constant(s, equivalent_ssp_threshold(s, c)) == pytest.approx(c)


class TestEffectiveStaleness:
    def test_pmf_sums_to_one(self):
        for c in (0.1, 0.3, 0.7, 1.0):
            total = sum(effective_staleness_pmf(3, c, k) for k in range(3, 2000))
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_pmf_zero_below_s(self):
        assert effective_staleness_pmf(3, 0.5, 2) == 0.0

    def test_expected_value(self):
        assert expected_effective_staleness(3, 0.5) == pytest.approx(4.0)
        assert expected_effective_staleness(3, 1.0) == pytest.approx(3.0)

    def test_sampler_matches_pmf(self):
        rng = np.random.default_rng(0)
        samples = sample_effective_staleness(3, 0.4, rng, size=20_000)
        assert samples.min() >= 3
        assert np.mean(samples) == pytest.approx(expected_effective_staleness(3, 0.4), rel=0.05)
        emp = np.mean(samples == 3)
        assert emp == pytest.approx(effective_staleness_pmf(3, 0.4, 3), abs=0.02)

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            effective_staleness_pmf(3, 0.0, 4)
        with pytest.raises(ValueError):
            sample_effective_staleness(3, 1.5, np.random.default_rng(0))
