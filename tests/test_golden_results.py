"""Golden determinism: the committed results survive the wire fast path.

The analytic lane scheduler and the COW snapshot cache both claim to be
pure optimizations — not one output byte may move.  This test reruns the
two experiments the fast path touches hardest (fig6: the incast
computation/communication split; fig7: full SSP co-simulated training
runs) at the committed settings (quick scale, seed 0) and compares the
produced JSON byte-for-byte against ``results/``.  ``--no-cache``
forces real simulation, so the content-addressed run cache cannot mask
a regression by replaying stale fragments.
"""

from pathlib import Path

import pytest

from repro.bench.__main__ import main as bench_main

RESULTS = Path(__file__).resolve().parent.parent / "results"

#: The committed files fig6/fig7 write (quick scale, seed 0).
GOLDEN = [
    "figure_6-_computation-communication_time-_resnet-56_cifar-10_-bsp.json",
    "figure_7-_test_accuracy_vs_cluster_size-_ssp_s-3.json",
]


@pytest.mark.no_sanitize  # full sweep: sanitized separately (CI --sanitize)
def test_fig6_fig7_results_byte_identical(tmp_path):
    for name in GOLDEN:
        assert (RESULTS / name).exists(), f"committed golden file missing: {name}"
    rc = bench_main(
        [
            "--only", "fig6", "fig7",
            "--no-cache",
            "--save-dir", str(tmp_path),
        ]
    )
    assert rc == 0
    for name in GOLDEN:
        produced = (tmp_path / name).read_bytes()
        committed = (RESULTS / name).read_bytes()
        assert produced == committed, f"{name} changed — determinism broken"
