"""Tests for loss functions and synthetic datasets."""

import numpy as np
import pytest

from repro.ml.data import (
    Dataset,
    gaussian_blobs,
    synthetic_cifar10,
    synthetic_cifar100,
    two_spirals,
)
from repro.ml.loss import accuracy, softmax, softmax_cross_entropy, top_k_accuracy


class TestSoftmaxCE:
    def test_uniform_loss(self):
        logits = np.zeros((4, 10))
        labels = np.arange(4)
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(10))

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        _, grad = softmax_cross_entropy(logits.copy(), labels)
        eps = 1e-6
        for i in range(5):
            for j in range(4):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num = (
                    softmax_cross_entropy(lp, labels)[0]
                    - softmax_cross_entropy(lm, labels)[0]
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-5)

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        _, grad = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_numerical_stability(self):
        logits = np.array([[1e4, 0.0], [-1e4, 0.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert np.isfinite(loss) and np.isfinite(grad).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros(4), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((4, 2)), np.zeros(3, dtype=int))

    def test_softmax_rows_normalized(self, rng):
        p = softmax(rng.normal(size=(7, 3)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()


class TestAccuracy:
    def test_top1(self):
        logits = np.array([[1.0, 2.0], [3.0, 0.0]])
        assert accuracy(logits, np.array([1, 0])) == 1.0
        assert accuracy(logits, np.array([0, 0])) == 0.5

    def test_topk(self):
        logits = np.array([[3.0, 2.0, 1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([2]), k=3) == 1.0
        assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0

    def test_topk_clamps(self):
        logits = np.ones((1, 2))
        assert top_k_accuracy(logits, np.array([1]), k=10) == 1.0

    def test_topk_invalid(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.ones((1, 2)), np.array([0]), k=0)


class TestDatasets:
    @pytest.mark.parametrize(
        "factory,n_classes",
        [
            (lambda: gaussian_blobs(n_classes=5, n_train=200, n_test=50), 5),
            (lambda: synthetic_cifar10(n_train=40, n_test=20, size=8), 10),
            (lambda: synthetic_cifar100(n_train=40, n_test=20, size=8), 100),
            (lambda: two_spirals(n_train=100, n_test=40), 2),
        ],
    )
    def test_shapes_and_labels(self, factory, n_classes):
        ds = factory()
        assert ds.n_classes == n_classes
        assert len(ds.x_train) == ds.n_train
        assert ds.y_train.min() >= 0 and ds.y_train.max() < n_classes

    def test_deterministic_by_seed(self):
        a = gaussian_blobs(seed=5, n_train=100, n_test=10)
        b = gaussian_blobs(seed=5, n_train=100, n_test=10)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        c = gaussian_blobs(seed=6, n_train=100, n_test=10)
        assert not np.array_equal(a.x_train, c.x_train)

    def test_shards_partition_training_set(self):
        ds = gaussian_blobs(n_train=100, n_test=10)
        total = 0
        for w in range(3):
            x, y = ds.shard(w, 3)
            total += len(x)
            assert len(x) == len(y)
        assert total == 100

    def test_shard_out_of_range(self):
        ds = gaussian_blobs(n_train=20, n_test=5)
        with pytest.raises(ValueError):
            ds.shard(3, 3)

    def test_batches_stream(self, rng):
        ds = gaussian_blobs(n_train=50, n_test=5, dim=4)
        it = ds.batches(rng, batch_size=8)
        xb, yb = next(it)
        assert xb.shape == (8, 4) and yb.shape == (8,)

    def test_batches_invalid_size(self, rng):
        ds = gaussian_blobs(n_train=50, n_test=5)
        with pytest.raises(ValueError):
            next(ds.batches(rng, 0))

    def test_blobs_linearly_learnable(self):
        """A least-squares classifier must beat chance comfortably —
        guards against generating unlearnable noise."""
        ds = gaussian_blobs(n_classes=4, dim=16, n_train=800, n_test=200, seed=1)
        onehot = np.eye(4)[ds.y_train]
        w, *_ = np.linalg.lstsq(ds.x_train, onehot, rcond=None)
        acc = accuracy(ds.x_test @ w, ds.y_test)
        assert acc > 0.6

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((3, 2)), np.zeros(2, dtype=int),
                    np.zeros((1, 2)), np.zeros(1, dtype=int), 2)

    def test_labels_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Dataset("bad", np.zeros((2, 2)), np.array([0, 5]),
                    np.zeros((1, 2)), np.array([0]), 2)

    def test_cifar_classes_distinguishable(self):
        """Per-class template means must differ across classes."""
        ds = synthetic_cifar10(n_train=300, n_test=50, size=8, seed=2)
        means = np.stack([
            ds.x_train[ds.y_train == c].mean(axis=0).ravel() for c in range(10)
        ])
        dists = np.linalg.norm(means[:, None] - means[None, :], axis=-1)
        off_diag = dists[~np.eye(10, dtype=bool)]
        assert off_diag.min() > 0.1
