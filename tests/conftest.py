"""Shared fixtures for the FluentPS reproduction test suite."""

import numpy as np
import pytest

from repro.core.keyspace import ModelSpec, TensorSpec

# Every test runs under the protocol sanitizer: an ambient Observability
# captures the servers' event streams and the teardown replays them
# through repro.analysis (opt out with @pytest.mark.no_sanitize).
pytest_plugins = ("repro.analysis.pytest_plugin",)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_spec():
    """A small two-tensor model used across PS tests."""
    return ModelSpec.from_tensors(
        "tiny", [TensorSpec("w", (6, 4)), TensorSpec("b", (4,))]
    )


@pytest.fixture
def quadratic_problem(rng, tiny_spec):
    """A convex target problem: minimize ||params - target||^2/2."""
    target = rng.normal(size=tiny_spec.total_elements)

    def make_step(lr=0.25, noise=0.0):
        def step(ctx):
            grad = ctx.params - target
            if noise:
                grad = grad + noise * ctx.rng.normal(size=grad.shape)
            return -lr * grad

        return step

    return tiny_spec, target, make_step
