"""Property test: every runner × sync model yields sanitizer-clean traces.

Randomized schedules (seeded straggler models for the simulator, real
thread interleavings for the threaded runner) across the five
synchronization models must always produce event streams the protocol
sanitizer accepts — the dynamic complement to the hand-built adversarial
streams in ``test_analysis_sanitizer.py``.
"""

import pytest

from repro.analysis import sanitize_observability
from repro.bench.workloads import blobs_task
from repro.core.api import ParameterServerSystem
from repro.core.models import bsp, dsps, dynamic_pssp, pssp, ssp
from repro.core.server import ExecutionMode
from repro.obs import MetricsRegistry, Observability
from repro.parallel import ThreadedRunner
from repro.sim.cluster import cpu_cluster
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import (
    ExponentialTailCompute,
    LogNormalCompute,
    TransientStragglerCompute,
)

# The sanitizer plugin in conftest already checks the ambient bundle; these
# tests pass an explicit Observability so the assertion is theirs.
pytestmark = pytest.mark.no_sanitize

MODELS = [
    ("bsp", bsp, ExecutionMode.LAZY),
    ("ssp", lambda: ssp(2), ExecutionMode.LAZY),
    ("ssp-soft", lambda: ssp(2), ExecutionMode.SOFT_BARRIER),
    ("pssp", lambda: pssp(2, 0.5), ExecutionMode.LAZY),
    ("pssp-dyn", lambda: dynamic_pssp(2), ExecutionMode.LAZY),
    ("dsps", dsps, ExecutionMode.LAZY),
]

SCHEDULES = [
    (0, LogNormalCompute(0.3)),
    (1, ExponentialTailCompute(p_slow=0.3, tail_scale=2.0)),
    (2, TransientStragglerCompute(3, slow_factor=4.0, period=5, duration=3)),
]


@pytest.mark.parametrize("seed,compute", SCHEDULES, ids=[s[1].__class__.__name__ for s in SCHEDULES])
@pytest.mark.parametrize("label,make_model,execution", MODELS, ids=[m[0] for m in MODELS])
def test_sim_runner_traces_are_clean(label, make_model, execution, seed, compute):
    obs = Observability(MetricsRegistry("prop"))
    task = blobs_task(3, n_train=200, n_test=60, seed=seed)
    run_fluentps(
        SimConfig(
            cluster=cpu_cluster(3, 2),
            max_iter=10,
            sync=make_model(),
            execution=execution,
            compute_model=compute,
            task=task,
            seed=seed,
            base_compute_time=0.4,
            obs=obs,
        )
    )
    assert obs.last_run.complete
    report = sanitize_observability(obs)
    assert report.ok, report.describe()
    assert report.n_events > 0


@pytest.mark.parametrize("label,make_model,execution", MODELS, ids=[m[0] for m in MODELS])
def test_threaded_runner_traces_are_clean(label, make_model, execution):
    obs = Observability(MetricsRegistry("prop"))
    task = blobs_task(3, n_train=200, n_test=60, seed=9)
    system = ParameterServerSystem(
        task.spec, task.init_params, 3, 2, make_model(), execution,
        seed=0, obs=obs,
    )
    result = ThreadedRunner(
        system, task.step_fn, max_iter=10, seed=2, obs=obs
    ).run()
    assert result.ok, result.worker_errors
    report = sanitize_observability(obs)
    assert report.ok, report.describe()
    assert report.n_events > 0
