"""Tests for the happens-before race detector (repro.analysis.races)."""

import threading

import numpy as np
import pytest

from repro.analysis.races import RaceTracker
from repro.bench.workloads import blobs_task
from repro.core.api import ParameterServerSystem
from repro.core.models import ssp
from repro.core.server import ExecutionMode
from repro.parallel.threaded import ThreadedRunner

pytestmark = pytest.mark.no_sanitize  # no simulated protocol streams here


def _spawn(tracker, fn):
    token = tracker.fork()

    def body():
        tracker.begin_thread(token)
        fn()
        tracker.end_thread()

    t = threading.Thread(target=body)
    t.start()
    return t


class TestTrackerCore:
    def test_unsynchronized_writes_flag_r001(self):
        tracker = RaceTracker()
        ts = [_spawn(tracker, lambda: tracker.access("x", write=True)) for _ in range(2)]
        for t in ts:
            t.join()
        codes = [v.code for v in tracker.report().violations]
        assert codes == ["R001"]

    def test_read_write_race_flags_r002(self):
        tracker = RaceTracker()
        barrier = threading.Barrier(2)

        def writer():
            barrier.wait()
            tracker.access("x", write=True)

        def reader():
            barrier.wait()
            tracker.access("x", write=False)

        ts = [_spawn(tracker, writer), _spawn(tracker, reader)]
        for t in ts:
            t.join()
        codes = {v.code for v in tracker.report().violations}
        assert codes == {"R002"}

    def test_lock_ordered_accesses_are_clean(self):
        tracker = RaceTracker()
        lock = threading.Lock()

        def body():
            for _ in range(20):
                with lock:
                    tracker.lock_acquired(id(lock))
                    tracker.access("x", write=True)
                    tracker.lock_released(id(lock))

        ts = [_spawn(tracker, body) for _ in range(3)]
        for t in ts:
            t.join()
        assert tracker.report().ok

    def test_event_edge_orders_accesses(self):
        tracker = RaceTracker()
        done = threading.Event()

        def setter():
            tracker.access("x", write=True)
            tracker.event_set(id(done))
            done.set()

        def waiter():
            done.wait(5.0)
            tracker.event_waited(id(done))
            tracker.access("x", write=False)

        ts = [_spawn(tracker, setter), _spawn(tracker, waiter)]
        for t in ts:
            t.join()
        assert tracker.report().ok

    def test_fork_join_edges_order_parent_accesses(self):
        tracker = RaceTracker()
        tracker.access("x", write=True)  # parent, before fork
        token = tracker.fork()
        end_box = {}

        def child():
            tracker.begin_thread(token)
            tracker.access("x", write=True)  # ordered after parent's write
            end_box["t"] = tracker.end_thread()

        t = threading.Thread(target=child)
        t.start()
        t.join()
        tracker.join_thread(end_box["t"])
        tracker.access("x", write=False)  # parent, after join
        assert tracker.report().ok

    def test_report_caps_and_dedups(self):
        tracker = RaceTracker(max_reports=1)
        ts = [
            _spawn(tracker, lambda: [tracker.access(f"loc{i}", write=True) for i in range(5)])
            for _ in range(2)
        ]
        for t in ts:
            t.join()
        assert len(tracker.report().violations) <= 1


class TestThreadedRunnerIntegration:
    def _system(self, n=3, servers=2, seed=0):
        task = blobs_task(n, n_train=120, n_test=40, seed=seed)
        system = ParameterServerSystem(
            task.spec, task.init_params, n, servers, ssp(1),
            ExecutionMode.LAZY, seed=seed,
        )
        return task, system

    def test_stock_runner_is_race_free(self):
        task, system = self._system()
        tracker = RaceTracker()
        result = ThreadedRunner(
            system, task.step_fn, max_iter=25, seed=1, race_tracker=tracker
        ).run()
        assert result.ok, result.worker_errors
        report = tracker.report()
        assert report.ok, [v.message for v in report.violations]
        assert report.n_events > 0

    def test_rogue_unlocked_access_is_flagged(self):
        # A step_fn that touches shared parameter state outside the lock
        # models the bug class the detector exists for.
        task, system = self._system()
        tracker = RaceTracker()

        def rogue_step(ctx):
            tracker.access("shard0.params", write=True, where="rogue_step")
            return task.step_fn(ctx)

        result = ThreadedRunner(
            system, rogue_step, max_iter=25, seed=1, race_tracker=tracker
        ).run()
        assert result.ok, result.worker_errors
        codes = {v.code for v in tracker.report().violations}
        assert "R001" in codes or "R002" in codes

    def test_runner_without_tracker_unchanged(self):
        task, system = self._system()
        result = ThreadedRunner(system, task.step_fn, max_iter=10, seed=1).run()
        assert result.ok
        assert np.isfinite(result.final_params).all()
