"""Tests for conv/pool layers: im2col adjointness and gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.conv import Conv2D, GlobalAvgPool2D, MaxPool2D, col2im, im2col
from tests.test_ml_layers import numerical_grad_input, numerical_grad_param


def naive_conv(x, W, b, stride, pad):
    """Direct-loop reference convolution."""
    bsz, c, h, w = x.shape
    oc, _ic, kh, kw = W.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    out = np.zeros((bsz, oc, oh, ow))
    for n in range(bsz):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[n, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[n, o, i, j] = (patch * W[o]).sum() + b[o]
    return out


class TestIm2Col:
    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_col2im_is_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining property."""
        x = rng.normal(size=(2, 3, 6, 6))
        for kh, stride, pad in [(3, 1, 1), (2, 2, 0), (3, 2, 1)]:
            cols = im2col(x, kh, kh, stride, pad)
            y = rng.normal(size=cols.shape)
            lhs = float((cols * y).sum())
            rhs = float((x * col2im(y, x.shape, kh, kh, stride, pad)).sum())
            assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_invalid_geometry(self, rng):
        with pytest.raises(ValueError):
            im2col(rng.normal(size=(1, 1, 2, 2)), 5, 5, 1, 0)


class TestConv2D:
    @pytest.mark.parametrize("stride,pad", [(1, 1), (2, 1), (1, 0), (2, 0)])
    def test_matches_naive(self, rng, stride, pad):
        layer = Conv2D(3, 4, 3, rng, stride=stride, pad=pad)
        x = rng.normal(size=(2, 3, 7, 7))
        out = layer.forward(x)
        ref = naive_conv(x, layer.params["W"], layer.params["b"], stride, pad)
        np.testing.assert_allclose(out, ref, atol=1e-10)

    def test_input_gradient(self, rng):
        layer = Conv2D(2, 3, 3, rng, stride=1, pad=1)
        x = rng.normal(size=(2, 2, 4, 4))
        out = layer.forward(x)
        dy = rng.normal(size=out.shape)
        dx = layer.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(layer, x, dy), atol=1e-5)

    @pytest.mark.parametrize("key", ["W", "b"])
    def test_param_gradients(self, rng, key):
        layer = Conv2D(2, 2, 3, rng, stride=2, pad=1)
        x = rng.normal(size=(2, 2, 5, 5))
        out = layer.forward(x)
        dy = rng.normal(size=out.shape)
        layer.backward(dy)
        np.testing.assert_allclose(
            layer.grads[key], numerical_grad_param(layer, key, x, dy), atol=1e-5
        )

    def test_same_padding_default(self, rng):
        layer = Conv2D(1, 1, 3, rng)
        assert layer.forward(np.zeros((1, 1, 8, 8))).shape == (1, 1, 8, 8)

    def test_wrong_channels_rejected(self, rng):
        layer = Conv2D(3, 4, 3, rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2, 8, 8)))

    def test_flops_positive(self, rng):
        assert Conv2D(3, 16, 3, rng).flops_per_sample(32, 32) > 0

    def test_invalid_config(self, rng):
        with pytest.raises(ValueError):
            Conv2D(0, 1, 3, rng)


class TestMaxPool:
    def test_forward_values(self):
        layer = MaxPool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_backward_routes_to_max(self, rng):
        layer = MaxPool2D(2)
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer.forward(x)
        dy = rng.normal(size=out.shape)
        dx = layer.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(layer, x, dy), atol=1e-5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestGlobalAvgPool:
    def test_forward(self):
        layer = GlobalAvgPool2D()
        x = np.ones((2, 3, 4, 4)) * np.arange(3).reshape(1, 3, 1, 1)
        np.testing.assert_allclose(layer.forward(x), [[0, 1, 2], [0, 1, 2]])

    def test_gradient(self, rng):
        layer = GlobalAvgPool2D()
        x = rng.normal(size=(2, 3, 3, 3))
        out = layer.forward(x)
        dy = rng.normal(size=out.shape)
        dx = layer.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(layer, x, dy), atol=1e-6)

    def test_requires_4d(self):
        with pytest.raises(ValueError):
            GlobalAvgPool2D().forward(np.zeros((2, 3)))


class TestProperties:
    @given(
        h=st.integers(min_value=3, max_value=8),
        kh=st.integers(min_value=1, max_value=3),
        stride=st.integers(min_value=1, max_value=2),
        pad=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_adjointness_random_geometry(self, h, kh, stride, pad, seed):
        if h + 2 * pad < kh:
            return
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, h, h))
        cols = im2col(x, kh, kh, stride, pad)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kh, kh, stride, pad)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


class TestDtypePreservation:
    def test_col2im_preserves_float32(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.dtype == np.float32
        out = col2im(cols, x.shape, 3, 3, 1, 1)
        assert out.dtype == np.float32

    def test_col2im_preserves_float64(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 6, 6))
        cols = im2col(x, 2, 2, 2, 0)
        out = col2im(cols, x.shape, 2, 2, 2, 0)
        assert out.dtype == np.float64
