"""Tests for the tracked perf-benchmark suite (repro.bench.perf)."""

import json

import pytest

from repro.bench.perf import (
    SCHEMA,
    PerfScale,
    _rolled_history,
    check_regression,
    render,
    run_suite,
)

#: Tiny scale: exercises every benchmark end to end in well under a second.
TINY = PerfScale(
    name="tiny",
    engine_procs=4,
    engine_iters=25,
    net_senders=2,
    net_msgs=4,
    sanitizer_iters=6,
    ml_steps=3,
    telemetry_ops=2_000,
    macro_workers=4,
    macro_iters=1,
    macro10k_workers=8,
    macro10k_iters=1,
    macro10k_repeats=1,
    macro100k_workers=12,
    macro100k_iters=1,
    macro100k_repeats=1,
    repeats=1,
)

EXPECTED_BENCHMARKS = {
    "engine_events_per_sec",
    "network_messages_per_sec",
    "sanitizer_events_per_sec",
    "ml_steps_per_sec",
    "null_telemetry_overhead_pct",
    "macro_fig7_wall_s",
    "macro_10k_wall_s",
    "macro_100k_wall_s",
    "macro_100k_sanitized_wall_s",
    "sweep_wall_s",
}


def _doc(engine_rate: float, scale: str = "tiny", **benchmarks) -> dict:
    all_benchmarks = {
        "engine_events_per_sec": {
            "value": engine_rate,
            "unit": "events/s",
            "detail": {},
        }
    }
    all_benchmarks.update(benchmarks)
    return {
        "schema": SCHEMA,
        "scale": scale,
        "python": "3.11",
        "benchmarks": all_benchmarks,
    }


def _net(rate: float) -> dict:
    return {"value": rate, "unit": "messages/s", "detail": {}}


def _macro(wall: float, events_per_sec: float = 0.0) -> dict:
    return {"value": wall, "unit": "s", "detail": {"events_per_sec": events_per_sec}}


class TestSuite:
    def test_run_suite_covers_every_benchmark(self):
        doc = run_suite(TINY)
        assert doc["schema"] == SCHEMA
        assert doc["scale"] == "tiny"
        assert set(doc["benchmarks"]) == EXPECTED_BENCHMARKS
        for name, bench in doc["benchmarks"].items():
            if name == "null_telemetry_overhead_pct":
                assert bench["value"] >= 0.0
            else:
                assert bench["value"] > 0.0

    def test_macro_detail_reports_memory_and_elision(self):
        from repro.bench.perf import bench_macro_100k

        result = bench_macro_100k(TINY)
        for key in (
            "peak_rss_mb",
            "pending_event_hwm",
            "events_elided",
            "quiet_regions",
            "fused_deliveries",
        ):
            assert key in result.detail, key
        assert result.detail["peak_rss_mb"] > 0  # ru_maxrss works on Linux

    def test_render_mentions_every_benchmark(self):
        doc = run_suite(TINY)
        text = render(doc)
        for name in EXPECTED_BENCHMARKS:
            assert name in text


class TestRegressionGate:
    def test_large_engine_drop_fails(self):
        failures = check_regression(_doc(600_000.0), _doc(1_000_000.0), 0.30)
        assert len(failures) == 1
        assert "engine_events_per_sec" in failures[0]

    def test_small_drop_passes(self):
        assert check_regression(_doc(900_000.0), _doc(1_000_000.0), 0.30) == []

    def test_improvement_passes(self):
        assert check_regression(_doc(2_000_000.0), _doc(1_000_000.0), 0.30) == []

    def test_missing_baseline_benchmark_passes(self):
        baseline = {"schema": SCHEMA, "benchmarks": {}}
        assert check_regression(_doc(1.0), baseline, 0.30) == []

    def test_network_drop_fails(self):
        cur = _doc(1e6, network_messages_per_sec=_net(60_000.0))
        base = _doc(1e6, network_messages_per_sec=_net(100_000.0))
        failures = check_regression(cur, base, 0.30)
        assert len(failures) == 1
        assert "network_messages_per_sec" in failures[0]

    def test_macro_wall_growth_fails_at_same_scale(self):
        cur = _doc(1e6, macro_fig7_wall_s=_macro(1.5))
        base = _doc(1e6, macro_fig7_wall_s=_macro(1.0))
        failures = check_regression(cur, base, 0.30)
        assert len(failures) == 1
        assert "macro_fig7_wall_s" in failures[0]

    def test_macro_wall_improvement_passes(self):
        cur = _doc(1e6, macro_fig7_wall_s=_macro(0.4))
        base = _doc(1e6, macro_fig7_wall_s=_macro(1.0))
        assert check_regression(cur, base, 0.30) == []

    def test_macro_cross_scale_compares_event_rate(self):
        # CI runs --quick against the full-scale record: wall times are not
        # comparable, so the gate falls back to events/sec (and a quick
        # wall far below the full-scale wall must not mask a rate drop).
        cur = _doc(1e6, scale="quick", macro_fig7_wall_s=_macro(0.1, 50_000.0))
        base = _doc(1e6, scale="full", macro_fig7_wall_s=_macro(1.0, 200_000.0))
        failures = check_regression(cur, base, 0.30)
        assert len(failures) == 1
        assert "events_per_sec" in failures[0]
        # Healthy cross-scale rate: no failure despite different walls.
        cur_ok = _doc(1e6, scale="quick", macro_fig7_wall_s=_macro(2.0, 190_000.0))
        assert check_regression(cur_ok, base, 0.30) == []

    def test_macro_10k_gated_like_the_128_macro(self):
        cur = _doc(1e6, macro_10k_wall_s=_macro(8.0))
        base = _doc(1e6, macro_10k_wall_s=_macro(5.0))
        failures = check_regression(cur, base, 0.30)
        assert len(failures) == 1
        assert "macro_10k_wall_s" in failures[0]
        # Cross-scale: quick (1k workers) vs full (10k) gates on events/sec.
        cur = _doc(1e6, scale="quick", macro_10k_wall_s=_macro(0.5, 40_000.0))
        base = _doc(1e6, scale="full", macro_10k_wall_s=_macro(5.0, 200_000.0))
        failures = check_regression(cur, base, 0.30)
        assert len(failures) == 1
        assert "macro_10k_wall_s" in failures[0]
        assert "events_per_sec" in failures[0]

    def test_macro_100k_gated_like_the_10k_macro(self):
        cur = _doc(1e6, macro_100k_wall_s=_macro(80.0))
        base = _doc(1e6, macro_100k_wall_s=_macro(50.0))
        failures = check_regression(cur, base, 0.30)
        assert len(failures) == 1
        assert "macro_100k_wall_s" in failures[0]
        # Cross-scale: quick (5k workers) vs full (100k) gates on events/sec.
        cur = _doc(1e6, scale="quick", macro_100k_wall_s=_macro(1.0, 40_000.0))
        base = _doc(1e6, scale="full", macro_100k_wall_s=_macro(50.0, 200_000.0))
        failures = check_regression(cur, base, 0.30)
        assert len(failures) == 1
        assert "macro_100k_wall_s" in failures[0]
        assert "events_per_sec" in failures[0]

    def test_cross_scale_skip_is_reported_by_name(self):
        # A cross-scale comparison without events_per_sec detail must name
        # the skipped benchmark instead of silently passing.
        cur = _doc(1e6, scale="quick", macro_10k_wall_s=_macro(0.5))
        base = _doc(
            1e6, scale="full",
            macro_10k_wall_s={"value": 5.0, "unit": "s", "detail": {}},
        )
        notes = []
        assert check_regression(cur, base, 0.30, notes=notes) == []
        assert any(
            "macro_10k_wall_s" in n and "skipped" in n and "baseline" in n
            for n in notes
        )

    def test_missing_gated_benchmark_is_reported_by_name(self):
        notes = []
        baseline = {"schema": SCHEMA, "scale": "tiny", "benchmarks": {}}
        assert check_regression(_doc(1.0), baseline, 0.30, notes=notes) == []
        skipped = "\n".join(notes)
        assert "network_messages_per_sec" in skipped
        assert "macro_fig7_wall_s" in skipped


class TestHistoryRoll:
    def test_no_previous_file_empty_history(self, tmp_path):
        assert _rolled_history(tmp_path / "BENCH_perf.json") == []

    def test_previous_document_becomes_history_entry(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        first = _doc(1_000_000.0)
        out.write_text(json.dumps(first))
        history = _rolled_history(out)
        assert history == [first]

    def test_history_accumulates_and_is_stripped(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        first = _doc(1.0)
        second = dict(_doc(2.0), history=[first])
        out.write_text(json.dumps(second))
        history = _rolled_history(out)
        assert history == [first, _doc(2.0)]

    def test_corrupt_previous_file_ignored(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        out.write_text("{not json")
        assert _rolled_history(out) == []


class TestScales:
    @pytest.mark.parametrize("field", list(PerfScale.__dataclass_fields__))
    def test_tiny_scale_fields_positive(self, field):
        value = getattr(TINY, field)
        if field != "name":
            assert value > 0
