"""Tests for the tracked perf-benchmark suite (repro.bench.perf)."""

import json

import pytest

from repro.bench.perf import (
    SCHEMA,
    PerfScale,
    _rolled_history,
    check_regression,
    render,
    run_suite,
)

#: Tiny scale: exercises every benchmark end to end in well under a second.
TINY = PerfScale(
    name="tiny",
    engine_procs=4,
    engine_iters=25,
    net_senders=2,
    net_msgs=4,
    sanitizer_iters=6,
    ml_steps=3,
    telemetry_ops=2_000,
    macro_workers=4,
    macro_iters=1,
    repeats=1,
)

EXPECTED_BENCHMARKS = {
    "engine_events_per_sec",
    "network_messages_per_sec",
    "sanitizer_events_per_sec",
    "ml_steps_per_sec",
    "null_telemetry_overhead_pct",
    "macro_fig7_wall_s",
    "sweep_wall_s",
}


def _doc(engine_rate: float) -> dict:
    return {
        "schema": SCHEMA,
        "scale": "tiny",
        "python": "3.11",
        "benchmarks": {
            "engine_events_per_sec": {
                "value": engine_rate,
                "unit": "events/s",
                "detail": {},
            }
        },
    }


class TestSuite:
    def test_run_suite_covers_every_benchmark(self):
        doc = run_suite(TINY)
        assert doc["schema"] == SCHEMA
        assert doc["scale"] == "tiny"
        assert set(doc["benchmarks"]) == EXPECTED_BENCHMARKS
        for name, bench in doc["benchmarks"].items():
            if name == "null_telemetry_overhead_pct":
                assert bench["value"] >= 0.0
            else:
                assert bench["value"] > 0.0

    def test_render_mentions_every_benchmark(self):
        doc = run_suite(TINY)
        text = render(doc)
        for name in EXPECTED_BENCHMARKS:
            assert name in text


class TestRegressionGate:
    def test_large_engine_drop_fails(self):
        failures = check_regression(_doc(600_000.0), _doc(1_000_000.0), 0.30)
        assert len(failures) == 1
        assert "engine_events_per_sec" in failures[0]

    def test_small_drop_passes(self):
        assert check_regression(_doc(900_000.0), _doc(1_000_000.0), 0.30) == []

    def test_improvement_passes(self):
        assert check_regression(_doc(2_000_000.0), _doc(1_000_000.0), 0.30) == []

    def test_missing_baseline_benchmark_passes(self):
        baseline = {"schema": SCHEMA, "benchmarks": {}}
        assert check_regression(_doc(1.0), baseline, 0.30) == []


class TestHistoryRoll:
    def test_no_previous_file_empty_history(self, tmp_path):
        assert _rolled_history(tmp_path / "BENCH_perf.json") == []

    def test_previous_document_becomes_history_entry(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        first = _doc(1_000_000.0)
        out.write_text(json.dumps(first))
        history = _rolled_history(out)
        assert history == [first]

    def test_history_accumulates_and_is_stripped(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        first = _doc(1.0)
        second = dict(_doc(2.0), history=[first])
        out.write_text(json.dumps(second))
        history = _rolled_history(out)
        assert history == [first, _doc(2.0)]

    def test_corrupt_previous_file_ignored(self, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        out.write_text("{not json")
        assert _rolled_history(out) == []


class TestScales:
    @pytest.mark.parametrize("field", list(PerfScale.__dataclass_fields__))
    def test_tiny_scale_fields_positive(self, field):
        value = getattr(TINY, field)
        if field != "name":
            assert value > 0
