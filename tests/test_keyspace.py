"""Tests for tensors, slicing strategies and EPS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keyspace import (
    Assignment,
    DefaultSlicer,
    ElasticSlicer,
    ModelSpec,
    RangeKeySlicer,
    ShardPiece,
    TensorSpec,
)
from repro.ml.models_zoo import alexnet_cifar_spec, resnet_cifar_spec


def spec_of(sizes):
    return ModelSpec.from_tensors(
        "m", [TensorSpec(f"t{i}", (s,)) for i, s in enumerate(sizes)]
    )


class TestTensorSpec:
    def test_elements_and_bytes(self):
        t = TensorSpec("w", (3, 4, 5))
        assert t.elements == 60
        assert t.nbytes == 240

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            TensorSpec("w", (0, 3))
        with pytest.raises(ValueError):
            TensorSpec("w", ())

    def test_invalid_dtype_size(self):
        with pytest.raises(ValueError):
            TensorSpec("w", (3,), dtype_size=0)


class TestModelSpec:
    def test_totals(self):
        m = spec_of([10, 20])
        assert m.total_elements == 30
        assert m.total_bytes == 120

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec.from_tensors("m", [TensorSpec("a", (1,)), TensorSpec("a", (2,))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ModelSpec.from_tensors("m", [])

    def test_tensor_lookup(self):
        m = spec_of([10, 20])
        assert m.tensor("t1").elements == 20
        with pytest.raises(KeyError):
            m.tensor("nope")


class TestAssignment:
    def test_validate_partition_accepts_exact_cover(self):
        m = spec_of([10])
        a = Assignment(n_servers=2)
        a.add(0, ShardPiece("t0", 0, 6))
        a.add(1, ShardPiece("t0", 6, 10))
        a.validate_partition(m)

    def test_validate_partition_rejects_gap(self):
        m = spec_of([10])
        a = Assignment(n_servers=2)
        a.add(0, ShardPiece("t0", 0, 5))
        a.add(1, ShardPiece("t0", 6, 10))
        with pytest.raises(ValueError, match="gap"):
            a.validate_partition(m)

    def test_validate_partition_rejects_overlap(self):
        m = spec_of([10])
        a = Assignment(n_servers=2)
        a.add(0, ShardPiece("t0", 0, 6))
        a.add(1, ShardPiece("t0", 5, 10))
        with pytest.raises(ValueError):
            a.validate_partition(m)

    def test_validate_partition_rejects_short_cover(self):
        m = spec_of([10])
        a = Assignment(n_servers=1)
        a.add(0, ShardPiece("t0", 0, 9))
        with pytest.raises(ValueError, match="covered"):
            a.validate_partition(m)

    def test_unknown_tensor_rejected(self):
        m = spec_of([10])
        a = Assignment(n_servers=1)
        a.add(0, ShardPiece("ghost", 0, 10))
        with pytest.raises(ValueError, match="unknown tensor"):
            a.validate_partition(m)

    def test_server_of(self):
        a = Assignment(n_servers=2)
        a.add(0, ShardPiece("t0", 0, 5))
        a.add(1, ShardPiece("t0", 5, 10))
        assert a.server_of("t0", 0) == 0
        assert a.server_of("t0", 7) == 1
        with pytest.raises(KeyError):
            a.server_of("t0", 10)

    def test_imbalance_balanced(self):
        a = Assignment(n_servers=2)
        a.add(0, ShardPiece("t0", 0, 5))
        a.add(1, ShardPiece("t0", 5, 10))
        assert a.imbalance() == pytest.approx(1.0)

    def test_moved_bytes_zero_for_identical(self):
        m = spec_of([100])
        s = ElasticSlicer(chunk_elements=16)
        a = s.slice(m, 4)
        assert a.moved_bytes(a) == 0

    def test_invalid_piece(self):
        with pytest.raises(ValueError):
            ShardPiece("t", 5, 5)


class TestRangeKeySlicer:
    def test_sequential_keys_land_on_server_zero(self):
        m = alexnet_cifar_spec()
        a = RangeKeySlicer().slice(m, 8)
        a.validate_partition(m)
        loads = a.bytes_per_server()
        # The whole model lands in the first key range.
        assert loads[0] == m.total_bytes
        assert a.imbalance() == pytest.approx(8.0)

    def test_small_keyspace_balances_by_count(self):
        m = spec_of([10] * 8)
        a = RangeKeySlicer(key_space=8).slice(m, 4)
        a.validate_partition(m)
        assert a.imbalance() == pytest.approx(1.0)


class TestDefaultSlicer:
    def test_exact_partition(self):
        m = resnet_cifar_spec(20)
        a = DefaultSlicer().slice(m, 8)
        a.validate_partition(m)

    def test_alexnet_imbalanced_by_fc1(self):
        # fc1 holds ~89% of AlexNet's parameters; whichever server hashes
        # it is overloaded.
        m = alexnet_cifar_spec()
        a = DefaultSlicer().slice(m, 8)
        a.validate_partition(m)
        assert a.imbalance() > 3.0

    def test_single_server(self):
        m = spec_of([5, 7])
        a = DefaultSlicer().slice(m, 1)
        a.validate_partition(m)
        assert a.bytes_per_server() == [m.total_bytes]


class TestElasticSlicer:
    def test_exact_partition_and_balance(self):
        m = alexnet_cifar_spec()
        a = ElasticSlicer(chunk_elements=1 << 14).slice(m, 8)
        a.validate_partition(m)
        assert a.imbalance() < 1.1

    def test_beats_default_on_skewed_model(self):
        m = alexnet_cifar_spec()
        d = DefaultSlicer().slice(m, 8)
        e = ElasticSlicer(chunk_elements=1 << 14).slice(m, 8)
        assert e.imbalance() < d.imbalance()

    def test_rebalance_shrink_preserves_partition(self):
        m = alexnet_cifar_spec()
        s = ElasticSlicer(chunk_elements=1 << 14)
        a8 = s.slice(m, 8)
        a5 = s.rebalance(a8, 5)
        a5.validate_partition(m)
        assert a5.imbalance() < 1.5

    def test_rebalance_grow_preserves_partition(self):
        m = alexnet_cifar_spec()
        s = ElasticSlicer(chunk_elements=1 << 14)
        a4 = s.slice(m, 4)
        a8 = s.rebalance(a4, 8)
        a8.validate_partition(m)

    def test_rebalance_moves_less_than_reslice(self):
        m = alexnet_cifar_spec()
        s = ElasticSlicer(chunk_elements=1 << 14)
        a8 = s.slice(m, 8)
        rebalanced = s.rebalance(a8, 6)
        fresh = s.slice(m, 6)
        assert a8.moved_bytes(rebalanced) <= a8.moved_bytes(fresh)

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            ElasticSlicer(chunk_elements=0)

    def test_invalid_server_count(self):
        m = spec_of([10])
        with pytest.raises(ValueError):
            ElasticSlicer().slice(m, 0)


class TestSlicerProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=12),
        n_servers=st.integers(min_value=1, max_value=9),
        chunk=st.sampled_from([64, 256, 1024, 4096]),
    )
    @settings(max_examples=80, deadline=None)
    def test_elastic_always_exact_partition(self, sizes, n_servers, chunk):
        m = spec_of(sizes)
        a = ElasticSlicer(chunk_elements=chunk).slice(m, n_servers)
        a.validate_partition(m)
        assert sum(a.elements_per_server()) == m.total_elements

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=12),
        n_servers=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_default_always_exact_partition(self, sizes, n_servers):
        m = spec_of(sizes)
        a = DefaultSlicer().slice(m, n_servers)
        a.validate_partition(m)

    @given(
        sizes=st.lists(st.integers(min_value=100, max_value=5000), min_size=4, max_size=12),
        pair=st.tuples(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)),
    )
    @settings(max_examples=50, deadline=None)
    def test_rebalance_always_exact_partition(self, sizes, pair):
        m = spec_of(sizes)
        s = ElasticSlicer(chunk_elements=256)
        a = s.slice(m, pair[0])
        b = s.rebalance(a, pair[1])
        b.validate_partition(m)
