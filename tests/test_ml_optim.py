"""Tests for worker-side optimizers and LR schedules."""

import numpy as np
import pytest

from repro.ml.optim import LARS, SGD, Adam, resolve_lr, step_decay, warmup


class TestSchedules:
    def test_constant(self):
        assert resolve_lr(0.1, 100) == 0.1

    def test_step_decay(self):
        sched = step_decay(1.0, [10, 20], factor=0.1)
        assert sched(0) == 1.0
        assert sched(10) == pytest.approx(0.1)
        assert sched(25) == pytest.approx(0.01)

    def test_warmup(self):
        sched = warmup(lambda t: 1.0, warmup_iters=10)
        assert sched(0) == pytest.approx(0.1)
        assert sched(4) == pytest.approx(0.5)
        assert sched(10) == 1.0

    def test_warmup_of_constant(self):
        sched = warmup(0.5, warmup_iters=2)
        assert sched(0) == pytest.approx(0.25)

    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            resolve_lr(lambda t: -1.0, 0)
        with pytest.raises(ValueError):
            warmup(1.0, warmup_iters=-1)


class TestSGD:
    def test_plain_update(self):
        opt = SGD(lr=0.5)
        g = np.array([2.0, -4.0])
        np.testing.assert_allclose(opt.update(g, np.zeros(2), 0), [-1.0, 2.0])

    def test_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.5)
        g = np.ones(2)
        u1 = opt.update(g, np.zeros(2), 0)
        u2 = opt.update(g, np.zeros(2), 1)
        np.testing.assert_allclose(u1, [-1.0, -1.0])
        np.testing.assert_allclose(u2, [-1.5, -1.5])

    def test_nesterov_differs(self):
        g = np.ones(2)
        plain = SGD(lr=1.0, momentum=0.5)
        nest = SGD(lr=1.0, momentum=0.5, nesterov=True)
        plain.update(g, np.zeros(2), 0)
        nest.update(g, np.zeros(2), 0)
        u_p = plain.update(g, np.zeros(2), 1)
        u_n = nest.update(g, np.zeros(2), 1)
        assert not np.allclose(u_p, u_n)

    def test_weight_decay(self):
        opt = SGD(lr=1.0, weight_decay=0.1)
        u = opt.update(np.zeros(2), np.array([10.0, -10.0]), 0)
        np.testing.assert_allclose(u, [-1.0, 1.0])

    def test_schedule_applied(self):
        opt = SGD(lr=step_decay(1.0, [1], 0.1))
        g = np.ones(1)
        assert opt.update(g, np.zeros(1), 0)[0] == pytest.approx(-1.0)
        assert opt.update(g, np.zeros(1), 5)[0] == pytest.approx(-0.1)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD(weight_decay=-0.1)


class TestAdam:
    def test_first_step_is_signed_lr(self):
        opt = Adam(lr=0.01)
        g = np.array([3.0, -7.0, 0.0])
        u = opt.update(g, np.zeros(3), 0)
        # Bias-corrected first step has magnitude ~lr in gradient sign.
        np.testing.assert_allclose(u[:2], [-0.01, 0.01], rtol=1e-4)
        assert u[2] == 0.0

    def test_adapts_per_parameter(self):
        opt = Adam(lr=0.1)
        big_small = np.array([100.0, 0.1])
        for t in range(20):
            u = opt.update(big_small, np.zeros(2), t)
        # Per-parameter normalization: similar step sizes despite the
        # 1000x gradient-scale difference.
        assert abs(u[0]) / abs(u[1]) < 2.0

    def test_weight_decay(self):
        opt = Adam(lr=0.1, weight_decay=0.5)
        u = opt.update(np.zeros(1), np.array([2.0]), 0)
        assert u[0] < 0  # decays toward zero

    def test_converges_on_quadratic(self):
        opt = Adam(lr=0.3)
        target = np.array([1.0, -2.0, 3.0])
        w = np.zeros(3)
        for t in range(300):
            w = w + opt.update(w - target, w, t)
        np.testing.assert_allclose(w, target, atol=0.05)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(weight_decay=-1)


class TestLARS:
    def test_layerwise_scaling(self):
        # Two tensors with very different weight/grad norm ratios get
        # different local rates.
        slices = [(0, 2), (2, 4)]
        opt = LARS(slices, lr=1.0, momentum=0.0, weight_decay=0.0, eta=1.0)
        params = np.array([10.0, 10.0, 0.1, 0.1])
        grad = np.array([1.0, 1.0, 1.0, 1.0])
        u = opt.update(grad, params, 0)
        # local_lr = ||w||/||g|| per tensor: 10 vs 0.1
        assert abs(u[0]) == pytest.approx(10.0, rel=1e-6)
        assert abs(u[2]) == pytest.approx(0.1, rel=1e-6)

    def test_zero_norm_tensor_safe(self):
        opt = LARS([(0, 2)], lr=1.0, momentum=0.0, weight_decay=0.0)
        u = opt.update(np.zeros(2), np.zeros(2), 0)
        np.testing.assert_allclose(u, 0.0)

    def test_momentum_state(self):
        opt = LARS([(0, 2)], lr=1.0, momentum=0.5, weight_decay=0.0, eta=1.0)
        params = np.ones(2)
        grad = np.ones(2)
        u1 = opt.update(grad, params, 0)
        u2 = opt.update(grad, params, 1)
        assert np.all(np.abs(u2) > np.abs(u1))

    def test_requires_slices(self):
        with pytest.raises(ValueError):
            LARS([])

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            LARS([(0, 1)], momentum=1.5)

    def test_integrates_with_network(self, rng):
        from repro.ml.models_zoo import mlp

        net = mlp(4, [5], 3, rng)
        opt = LARS(net.tensor_slices(), lr=0.1)
        g = rng.normal(size=net.n_params)
        u = opt.update(g, net.get_flat(), 0)
        assert u.shape == (net.n_params,)
        assert np.isfinite(u).all()
