"""Tests for the flat-vector shard layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keyspace import DefaultSlicer, ElasticSlicer, ModelSpec, TensorSpec
from repro.core.layout import ShardLayout


def make_layout(sizes, n_servers, chunk=64):
    spec = ModelSpec.from_tensors(
        "m", [TensorSpec(f"t{i}", (s,)) for i, s in enumerate(sizes)]
    )
    return spec, ShardLayout(spec, ElasticSlicer(chunk_elements=chunk).slice(spec, n_servers))


class TestScatterGather:
    def test_roundtrip(self, rng):
        spec, layout = make_layout([100, 37, 5], 3)
        flat = rng.normal(size=spec.total_elements)
        shards = layout.scatter(flat)
        assert sum(s.size for s in shards) == spec.total_elements
        back = layout.gather(shards)
        np.testing.assert_array_equal(back, flat)

    def test_gather_into_single_server(self, rng):
        spec, layout = make_layout([64, 64], 2)
        flat = rng.normal(size=spec.total_elements)
        shards = layout.scatter(flat)
        out = np.zeros(spec.total_elements)
        layout.gather_into(out, 0, shards[0])
        layout.gather_into(out, 1, shards[1])
        np.testing.assert_array_equal(out, flat)

    def test_scatter_wrong_size_rejected(self):
        spec, layout = make_layout([10], 2)
        with pytest.raises(ValueError):
            layout.scatter(np.zeros(11))

    def test_gather_wrong_shard_rejected(self, rng):
        spec, layout = make_layout([10], 2)
        shards = layout.scatter(rng.normal(size=10))
        shards[0] = np.zeros(shards[0].size + 1)
        with pytest.raises(ValueError):
            layout.gather(shards)

    def test_gather_wrong_count_rejected(self):
        spec, layout = make_layout([10], 2)
        with pytest.raises(ValueError):
            layout.gather([np.zeros(5)])

    def test_shard_bytes(self):
        spec, layout = make_layout([100], 2, chunk=50)
        assert layout.shard_bytes(0) + layout.shard_bytes(1) == 400

    def test_unflatten_views_tensors(self, rng):
        spec = ModelSpec.from_tensors(
            "m", [TensorSpec("a", (2, 3)), TensorSpec("b", (4,))]
        )
        layout = ShardLayout(spec, DefaultSlicer().slice(spec, 2))
        flat = rng.normal(size=10)
        tensors = layout.unflatten(flat)
        assert tensors["a"].shape == (2, 3)
        assert tensors["b"].shape == (4,)
        np.testing.assert_array_equal(tensors["a"].ravel(), flat[:6])

    def test_tensor_offsets(self):
        spec = ModelSpec.from_tensors(
            "m", [TensorSpec("a", (6,)), TensorSpec("b", (4,))]
        )
        layout = ShardLayout(spec, DefaultSlicer().slice(spec, 1))
        assert layout.tensor_offset("a") == 0
        assert layout.tensor_offset("b") == 6


class TestProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=8),
        n_servers=st.integers(min_value=1, max_value=6),
        chunk=st.sampled_from([16, 64, 257]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_scatter_gather_is_identity(self, sizes, n_servers, chunk, seed):
        spec, layout = make_layout(sizes, n_servers, chunk=chunk)
        flat = np.random.default_rng(seed).normal(size=spec.total_elements)
        np.testing.assert_array_equal(layout.gather(layout.scatter(flat)), flat)

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=8),
        n_servers=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_shard_elements_partition_total(self, sizes, n_servers):
        spec, layout = make_layout(sizes, n_servers)
        assert sum(layout.shard_elements) == spec.total_elements
