"""Tests for the observability substrate: registry, null backend, report."""

import pytest

from repro.core.metrics import SyncMetrics
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    Observability,
    current_observability,
    exponential_buckets,
    null_registry,
    observed,
    set_current_observability,
)
from repro.obs.report import render_report
from repro.sim.trace import SpanKind, TraceRecorder

# These tests assert the ambient-observability machinery itself (NULL_OBS
# defaults, swap/restore); the sanitizer fixture would shadow it.
pytestmark = pytest.mark.no_sanitize


class TestExponentialBuckets:
    def test_values(self):
        assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]

    @pytest.mark.parametrize(
        "start,factor,count", [(0.0, 2.0, 3), (-1.0, 2.0, 3), (1.0, 1.0, 3), (1.0, 2.0, 0)]
    )
    def test_invalid_rejected(self, start, factor, count):
        with pytest.raises(ValueError):
            exponential_buckets(start, factor, count)


class TestCounter:
    def test_labelled_children_independent(self):
        reg = MetricsRegistry("t")
        c = reg.counter("pulls")
        c.inc(shard=0)
        c.inc(3.0, shard=1)
        c.labels(shard=1).inc()
        assert c.value(shard=0) == 1.0
        assert c.value(shard=1) == 4.0
        assert c.total() == 5.0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry("t").counter("n")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_unseen_label_set_reads_zero(self):
        c = MetricsRegistry("t").counter("n")
        assert c.value(shard=99) == 0.0


class TestGauge:
    def test_series_uses_registry_clock(self):
        reg = MetricsRegistry("t")
        now = [0.0]
        reg.set_clock(lambda: now[0])
        g = reg.gauge("depth")
        g.set(2.0, shard=0)
        now[0] = 1.5
        g.set(5.0, shard=0)
        ts, vs = g.series(shard=0)
        assert ts == [0.0, 1.5]
        assert vs == [2.0, 5.0]
        assert g.value(shard=0) == 5.0

    def test_keep_series_off(self):
        reg = MetricsRegistry("t", keep_series=False)
        g = reg.gauge("depth")
        g.set(2.0)
        assert g.series() == ([], [])
        assert g.value() == 2.0

    def test_series_ring_buffer_keeps_newest_points(self):
        reg = MetricsRegistry("t", series_max_points=3)
        now = [0.0]
        reg.set_clock(lambda: now[0])
        g = reg.gauge("depth")
        for i in range(6):
            now[0] = float(i)
            g.set(float(i * 10), shard=0)
        ts, vs = g.series(shard=0)
        assert ts == [3.0, 4.0, 5.0]
        assert vs == [30.0, 40.0, 50.0]
        assert g.value(shard=0) == 50.0  # last value unaffected by the cap

    def test_series_cap_is_per_label_set(self):
        reg = MetricsRegistry("t", series_max_points=2)
        g = reg.gauge("depth")
        for i in range(4):
            g.set(float(i), shard=0)
        g.set(99.0, shard=1)
        assert g.series(shard=0)[1] == [2.0, 3.0]
        assert g.series(shard=1)[1] == [99.0]

    def test_series_unbounded_when_cap_none(self):
        reg = MetricsRegistry("t", series_max_points=None)
        g = reg.gauge("depth")
        for i in range(100):
            g.set(float(i))
        assert len(g.series()[1]) == 100

    def test_invalid_series_cap_rejected(self):
        reg = MetricsRegistry("t", series_max_points=0)
        with pytest.raises(ValueError):
            reg.gauge("depth")

    def test_default_cap_bounds_memory(self):
        reg = MetricsRegistry("t")
        assert reg.series_max_points == MetricsRegistry.DEFAULT_SERIES_MAX_POINTS


class TestHistogram:
    def test_bucket_counts_known_samples(self):
        reg = MetricsRegistry("t")
        h = reg.histogram("lat", buckets=[1.0, 10.0, 100.0])
        # <=1 | <=10 | <=100 | overflow
        for v in [0.5, 1.0, 2.0, 50.0, 1000.0]:
            h.observe(v)
        assert h.bucket_counts() == [2, 1, 1, 1]
        assert h.count() == 5
        assert h.sum() == pytest.approx(1053.5)
        assert h.mean() == pytest.approx(1053.5 / 5)

    def test_quantile_interpolates_within_bucket(self):
        h = MetricsRegistry("t").histogram("lat", buckets=[1.0, 10.0, 100.0])
        for v in [0.5] * 9 + [50.0]:
            h.observe(v)
        # target rank 5 of 9 observations in the [0, 1] bucket.
        assert h.quantile(0.5) == pytest.approx(5 / 9)
        # the overflow estimate is clamped to the observed max.
        assert h.quantile(1.0) == 50.0

    def test_quantile_empty_and_invalid(self):
        h = MetricsRegistry("t").histogram("lat")
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_non_increasing_buckets_rejected(self):
        reg = MetricsRegistry("t")
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=[1.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            reg.histogram("bad2", buckets=[2.0, 1.0])


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry("t")
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry("t")
        reg.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a")

    def test_get_unknown_names_available(self):
        reg = MetricsRegistry("t")
        reg.counter("a")
        with pytest.raises(KeyError, match="'a'"):
            reg.get("missing")

    def test_to_dict_round_trips_names(self):
        reg = MetricsRegistry("t")
        reg.counter("a").inc(shard=1)
        reg.gauge("b").set(2.0)
        d = reg.to_dict()
        assert sorted(d["metrics"]) == ["a", "b"]
        assert d["metrics"]["a"]["values"] == {"shard=1": 1.0}


class TestNullBackend:
    def test_records_nothing_and_stores_no_keys(self):
        reg = null_registry()
        c = reg.counter("pulls")
        c.inc(shard=0)
        c.labels(shard=1).inc(5)
        g = reg.gauge("depth")
        g.set(3.0, shard=0)
        h = reg.histogram("lat", buckets=[1.0])
        h.observe(2.0)
        assert reg.names() == []
        assert reg.to_dict() == {"name": "null", "metrics": {}}
        assert c.total() == 0.0
        assert g.series(shard=0) == ([], [])
        assert h.count() == 0

    def test_shared_singleton(self):
        assert null_registry() is null_registry()
        assert isinstance(null_registry(), NullRegistry)

    def test_disabled_bundle_retains_no_runs(self):
        obs = current_observability()
        assert not obs.enabled
        cap = obs.begin_run("x", TraceRecorder())
        cap.instants.record("e", 0.0)
        assert obs.runs == []
        assert obs.last_run is None


class TestContext:
    def test_set_and_restore(self):
        obs = Observability(MetricsRegistry("mine"))
        prev = set_current_observability(obs)
        try:
            assert current_observability() is obs
        finally:
            set_current_observability(prev)
        assert current_observability() is prev

    def test_observed_scopes(self):
        before = current_observability()
        obs = Observability()
        with observed(obs):
            assert current_observability() is obs
        assert current_observability() is before

    def test_none_resets_to_disabled(self):
        prev = set_current_observability(None)
        try:
            assert not current_observability().enabled
        finally:
            set_current_observability(prev)


class TestSyncMetricsPublish:
    def test_summary_lands_as_gauges(self):
        reg = MetricsRegistry("t")
        m = SyncMetrics()
        m.record_pull(immediate=True, iteration=0)
        m.record_pull(immediate=False, iteration=1)
        m.record_probabilistic(passed=True)
        m.record_probabilistic(passed=False)
        m.publish(reg)
        assert reg.get("sync_pulls").value() == 2.0
        assert reg.get("sync_dprs").value() == 1.0
        assert reg.get("sync_probabilistic_passes").value() == 1.0
        assert reg.get("sync_probabilistic_pauses").value() == 1.0


class TestReport:
    def test_render_covers_all_kinds(self):
        reg = MetricsRegistry("t")
        reg.counter("c").inc(shard=0)
        reg.gauge("g").set(1.5, shard=0)
        reg.histogram("h", buckets=[1.0, 10.0]).observe(0.5, worker=2)
        tr = TraceRecorder()
        tr.record_span("worker0", SpanKind.COMPUTE, 0.0, 2.0)
        out = render_report(reg, trace=tr)
        assert "-- counters --" in out
        assert "g{shard=0}: 1.5" in out
        assert "h{worker=2}" in out
        assert "worker0: compute=2" in out

    def test_empty_registry_notes_disabled(self):
        out = render_report(MetricsRegistry("t"))
        assert "no metrics recorded" in out
