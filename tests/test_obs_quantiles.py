"""Mergeable quantile sketches: accuracy, exact merge, registry wiring."""

import itertools
import json

import numpy as np
import pytest

from repro.obs import MetricsRegistry, QuantileSketch
from repro.obs.quantiles import (
    merge_all,
    merge_metric_docs,
    percentile_rows,
    sketches_from_metrics_doc,
)
from repro.obs.registry import NullRegistry
from repro.obs.snapshot import ServerSnapshotter


def _values(seed: int, n: int = 4000) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Lognormal latencies spanning several orders of magnitude.
    return rng.lognormal(mean=-4.0, sigma=1.5, size=n)


class TestSketchAccuracy:
    def test_quantiles_within_relative_accuracy(self):
        vals = _values(0)
        sk = QuantileSketch(relative_accuracy=0.01)
        for v in vals:
            sk.add(v)
        for q in (0.1, 0.5, 0.9, 0.95, 0.99):
            # The true quantile lies between the two nearest order
            # statistics; the sketch must land within the relative
            # accuracy of that interval (2% leaves slack for the
            # rank convention at interval edges).
            lo = float(np.quantile(vals, q, method="lower")) * 0.98
            hi = float(np.quantile(vals, q, method="higher")) * 1.02
            assert lo <= sk.quantile(q) <= hi, f"q={q}"

    def test_extremes_and_zero_bucket(self):
        sk = QuantileSketch()
        for v in [0.0, 0.0, 1.0, 2.0]:
            sk.add(v)
        assert sk.quantile(0.0) == 0.0
        assert sk.quantile(1.0) == pytest.approx(2.0, rel=0.01)
        assert sk.count == 4
        assert sk.zero_count == 2

    def test_rejects_negative_and_nan(self):
        sk = QuantileSketch()
        with pytest.raises(ValueError):
            sk.add(-1.0)
        with pytest.raises(ValueError):
            sk.add(float("nan"))

    def test_empty_sketch(self):
        sk = QuantileSketch()
        assert sk.quantile(0.5) == 0.0
        assert sk.sum() == 0.0
        assert sk.mean() == 0.0
        assert sk.to_dict()["min"] is None

    def test_mean_tracks_true_mean(self):
        vals = _values(3)
        sk = QuantileSketch()
        for v in vals:
            sk.add(v)
        assert sk.mean() == pytest.approx(float(vals.mean()), rel=0.02)


class TestSketchMerge:
    def test_merge_matches_single_sketch_exactly(self):
        vals = _values(1, n=1000)
        whole = QuantileSketch()
        for v in vals:
            whole.add(v)
        parts = [QuantileSketch() for _ in range(4)]
        for i, v in enumerate(vals):
            parts[i % 4].add(v)
        merged = merge_all(parts)
        assert merged.to_dict() == whole.to_dict()

    def test_merge_order_independent_and_byte_deterministic(self):
        vals = _values(2, n=800)
        chunks = np.array_split(vals, 4)
        blobs = set()
        for order in itertools.permutations(range(4)):
            parts = []
            for i in order:
                sk = QuantileSketch()
                for v in chunks[i]:
                    sk.add(v)
                parts.append(sk)
            merged = merge_all(parts)
            blobs.add(json.dumps(merged.to_dict(), sort_keys=True))
        assert len(blobs) == 1

    def test_merge_accuracy_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_from_dict_round_trip(self):
        sk = QuantileSketch()
        for v in _values(4, n=200):
            sk.add(v)
        clone = QuantileSketch.from_dict(json.loads(json.dumps(sk.to_dict())))
        assert clone.to_dict() == sk.to_dict()
        assert clone.quantile(0.95) == sk.quantile(0.95)


class TestRegistrySketch:
    def test_sketch_metric_observe_and_merge(self):
        reg = MetricsRegistry("t")
        s = reg.sketch("lat", "help")
        s.labels(worker=0).observe(1.0)
        s.labels(worker=1).observe(3.0)
        assert s.count(worker=0) == 1
        merged = s.merged()
        assert merged.count == 2
        assert 1.0 <= merged.quantile(0.0) <= merged.quantile(1.0) <= 3.0

    def test_sketch_survives_metrics_doc_round_trip(self):
        reg = MetricsRegistry("t")
        s = reg.sketch("lat")
        for v in (0.1, 0.2, 0.3):
            s.observe(v)
        doc = json.loads(json.dumps(reg.to_dict()))
        rebuilt = sketches_from_metrics_doc(doc)
        assert rebuilt["lat"][""].count == 3

    def test_merge_metric_docs_across_arms(self):
        docs = []
        for arm in range(3):
            reg = MetricsRegistry(f"arm{arm}")
            s = reg.sketch("lat")
            s.labels(worker=0).observe(float(arm + 1))
            docs.append(reg.to_dict())
        merged = merge_metric_docs(docs)
        assert merged["lat"]["worker=0"].count == 3
        rows = percentile_rows(merged)
        assert rows[0][:3] == ["lat", "worker=0", 3]

    def test_null_registry_sketch_is_noop(self):
        reg = NullRegistry()
        s = reg.sketch("lat")
        s.observe(1.0)
        s.labels(worker=0).observe(2.0)
        assert s.merged() is None
        assert s.sketch() is None

    def test_invalid_accuracy_rejected_eagerly(self):
        reg = MetricsRegistry("t")
        with pytest.raises(ValueError):
            reg.sketch("bad", relative_accuracy=1.5)


class TestGaugeEvictions:
    def test_ring_buffer_evictions_counted(self):
        reg = MetricsRegistry("t", series_max_points=4)
        g = reg.gauge("depth")
        for i in range(7):
            g.set(float(i))
        assert g.evicted() == 3
        ts, vs = g.series()
        assert len(vs) == 4 and vs[-1] == 6.0
        assert reg.to_dict()["metrics"]["depth"]["evicted"] == {"": 3}

    def test_no_evictions_no_key(self):
        reg = MetricsRegistry("t", series_max_points=4)
        g = reg.gauge("depth")
        g.set(1.0)
        assert g.evicted() == 0
        assert "evicted" not in reg.to_dict()["metrics"]["depth"]


class _Shard:
    """Minimal stand-in with the attributes the snapshotter scrapes."""

    def __init__(self):
        self.shard_id = 0
        self.buffered_pulls = 0
        self.v_train = 0
        self.version = 0
        self.snapshot_copies = 0
        self.snapshot_copies_avoided = 0
        self.callbacks = {}
        self.metrics = type("M", (), {"dprs": 0})()


class TestSnapshotterFinalize:
    def test_finalize_emits_final_sample_once(self):
        reg = MetricsRegistry("t")
        snap = ServerSnapshotter(reg, [_Shard()])
        snap.scrape(1.0)
        snap.finalize(2.5)
        assert snap.scrapes == 2
        _, vs = reg.get("ps_frontier").series(shard=0)
        assert len(vs) == 2

    def test_finalize_skips_when_already_sampled_at_end(self):
        reg = MetricsRegistry("t")
        snap = ServerSnapshotter(reg, [_Shard()])
        snap.scrape(2.5)
        snap.finalize(2.5)
        assert snap.scrapes == 1
