"""Run-to-run determinism of the co-simulation in one process.

Two identically-seeded runs must be *byte-identical*: the same protocol
event stream (names, timestamps, actors, args) and the same message-id
sequence on the wire.  This is the regression net for the engine fast
path (heap ordering, tombstones, bare-number yields must not perturb
event order) and for the per-``Network`` message-id counter (a module
global would leak ids from the first run into the second).
"""

import json

from repro.core.models import ssp
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.obs import Observability
from repro.sim.cluster import cpu_cluster
from repro.sim.engine import Engine
from repro.sim.network import Network, NicSpec
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.stragglers import cpu_cluster_compute


def _run_sim():
    """One seeded co-simulation; returns (event stream bytes, msg ids)."""
    obs = Observability()
    cfg = SimConfig(
        cluster=cpu_cluster(8, n_servers=2),
        max_iter=4,
        sync=ssp(2),
        workload=alexnet_cifar_workload(),
        compute_model=cpu_cluster_compute(8),
        seed=11,
        obs=obs,
    )
    runner = FluentPSSimRunner(cfg)
    deliveries = []
    runner.net.on_delivery(
        lambda m: deliveries.append((m.msg_id, m.src, m.dst, m.size_bytes, m.tag))
    )
    runner.run()
    # Server incarnation uids are process-unique *by design* (the
    # sanitizer pools direct-server streams per test, so two same-shard
    # servers must never collide); canonicalize them to dense
    # first-appearance indices so the rest of the stream can be compared
    # byte for byte.
    uid_map = {}
    events = []
    for cap in obs.runs:
        for e in cap.instants:
            args = dict(e.args)
            if "uid" in args:
                args["uid"] = uid_map.setdefault(args["uid"], len(uid_map))
            events.append({"name": e.name, "t": e.t, "actor": e.actor, "args": args})
    stream = json.dumps(events, sort_keys=True).encode()
    return stream, deliveries


class TestSimDeterminism:
    def test_back_to_back_runs_byte_identical(self):
        stream_a, deliveries_a = _run_sim()
        stream_b, deliveries_b = _run_sim()
        assert stream_a == stream_b
        assert deliveries_a == deliveries_b
        assert deliveries_a  # the run actually put traffic on the wire

    def test_msg_ids_start_at_zero_per_network(self):
        for _ in range(2):  # a second network must not continue the first's ids
            eng = Engine()
            net = Network(eng)
            net.add_node("a", NicSpec(bandwidth_Bps=1e9))
            net.add_node("b", NicSpec(bandwidth_Bps=1e9))
            seen = []
            net.on_delivery(lambda m: seen.append(m.msg_id))
            for _i in range(5):
                net.send("a", "b", 1000)
            eng.run()
            assert seen == [0, 1, 2, 3, 4]

    def test_engine_event_order_stable_across_runs(self):
        def run_once():
            eng = Engine()
            order = []

            def proc(i, delay):
                for k in range(20):
                    yield delay
                    order.append((i, k, eng.now))

            for i in range(16):
                eng.spawn(proc(i, 0.5 + i * 1e-6))
            eng.run()
            return order

        assert run_once() == run_once()
