"""Tests for the TrainingTask glue layer."""

import numpy as np
import pytest

from repro.core.driver import StepContext
from repro.ml.data import gaussian_blobs
from repro.ml.models_zoo import proxy_classifier
from repro.ml.optim import SGD
from repro.ml.training import TrainingTask, evaluate
from repro.utils.rng import derive_rng


@pytest.fixture
def task():
    ds = gaussian_blobs(n_classes=4, dim=8, n_train=400, n_test=100, seed=1)
    return TrainingTask(
        lambda: proxy_classifier(ds, hidden=(16,), seed=2),
        ds,
        n_workers=2,
        batch_size=16,
        optimizer_factory=lambda net: SGD(lr=0.2, momentum=0.9),
        seed=3,
    )


class TestTrainingTask:
    def test_spec_matches_init_params(self, task):
        assert task.init_params.shape == (task.spec.total_elements,)

    def test_single_worker_loss_decreases(self, task):
        params = task.init_params.copy()
        rng = derive_rng(0, "t")
        for i in range(60):
            u = task.step_fn(StepContext(0, i, params, rng))
            params = params + u  # single worker: apply own update fully...
        early = np.mean(task.loss_history[:10])
        late = np.mean(task.loss_history[-10:])
        assert late < early * 0.7

    def test_step_returns_update_shape(self, task):
        u = task.step_fn(StepContext(0, 0, task.init_params.copy(), derive_rng(0, "u")))
        assert u.shape == task.init_params.shape
        assert np.isfinite(u).all()

    def test_worker_state_isolated(self, task):
        task.step_fn(StepContext(0, 0, task.init_params.copy(), derive_rng(0, "a")))
        task.step_fn(StepContext(1, 0, task.init_params.copy(), derive_rng(0, "b")))
        assert task._worker_nets[0] is not task._worker_nets[1]
        assert task._worker_opts[0] is not task._worker_opts[1]

    def test_eval_fn_range(self, task):
        acc = task.eval_fn(task.init_params)
        assert 0.0 <= acc <= 1.0

    def test_eval_improves_after_training(self, task):
        params = task.init_params.copy()
        rng = derive_rng(0, "t2")
        acc0 = task.eval_fn(params)
        for i in range(120):
            params = params + task.step_fn(StepContext(0, i, params, rng))
        assert task.eval_fn(params) > acc0 + 0.1

    def test_mean_recent_loss(self, task):
        with pytest.raises(ValueError):
            task.mean_recent_loss()
        task.step_fn(StepContext(0, 0, task.init_params.copy(), derive_rng(0, "l")))
        assert task.mean_recent_loss() > 0

    def test_eval_subsample(self):
        ds = gaussian_blobs(n_classes=3, dim=4, n_train=50, n_test=40, seed=1)
        t = TrainingTask(
            lambda: proxy_classifier(ds, hidden=(8,), seed=2), ds,
            n_workers=1, eval_subsample=10,
        )
        assert len(t._x_eval) == 10

    def test_invalid_config(self):
        ds = gaussian_blobs(n_train=20, n_test=10)
        with pytest.raises(ValueError):
            TrainingTask(lambda: None, ds, n_workers=0)
        with pytest.raises(ValueError):
            TrainingTask(lambda: None, ds, n_workers=1, batch_size=0)


class TestEvaluate:
    def test_batched_equals_full(self, rng):
        ds = gaussian_blobs(n_classes=3, dim=4, n_train=50, n_test=64, seed=1)
        net = proxy_classifier(ds, hidden=(8,), seed=2)
        a = evaluate(net, ds.x_test, ds.y_test, batch_size=7)
        b = evaluate(net, ds.x_test, ds.y_test, batch_size=1000)
        assert a == pytest.approx(b)

    def test_empty_rejected(self, rng):
        ds = gaussian_blobs(n_train=20, n_test=10)
        net = proxy_classifier(ds, hidden=(4,))
        with pytest.raises(ValueError):
            evaluate(net, ds.x_test[:0], ds.y_test[:0])
