"""Protocol-level properties across runners and systems.

These pin down the *claims* behind the paper's design, at the level of
message orderings and conservation laws rather than end metrics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import blobs_task, workload_for
from repro.core.filters import TopKFilter
from repro.core.keyspace import ElasticSlicer
from repro.core.models import bsp, ssp
from repro.sim.cluster import cpu_cluster, gpu_cluster_p2
from repro.sim.engine import Engine
from repro.sim.network import Network, NicSpec
from repro.sim.runner import FluentPSSimRunner, SimConfig, run_fluentps
from repro.sim.stragglers import DeterministicCompute, TransientStragglerCompute


class TestNetworkConservation:
    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30),
        latency=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_byte_sent_is_delivered(self, sizes, latency):
        eng = Engine()
        net = Network(eng, latency_s=latency)
        nic = NicSpec(bandwidth_Bps=1e6, overhead_s=1e-6)
        for name in ("a", "b"):
            net.add_node(name, nic)
        delivered = []
        for s in sizes:
            net.send("a", "b", s).subscribe(lambda m: delivered.append(m.size_bytes))
        eng.run()
        assert sorted(delivered) == sorted(sizes)
        assert net.total_bytes == sum(sizes)
        assert net.endpoint("b").bytes_received == sum(sizes)


class TestOverlapProperty:
    def test_shard_reply_precedes_other_shards_pushes(self):
        """The defining overlap property (Figure 4b): with one straggler,
        some pull-reply deliveries happen *before* the straggler's last
        push of the same iteration has been delivered to its last shard —
        i.e. a shard served its pull without waiting for the other M−1
        shards to be updated."""
        n, m = 3, 4
        compute = TransientStragglerCompute(
            n, slow_factor=4.0, period=8, duration=8, jitter_sigma=0.0
        )
        cfg = SimConfig(
            cluster=gpu_cluster_p2(n, m),
            max_iter=5,
            sync=bsp(),
            workload=workload_for("resnet56"),
            batch_per_worker=256,
            compute_model=compute,
            seed=0,
            slicer=ElasticSlicer(),
        )
        runner = FluentPSSimRunner(cfg)
        events = []
        runner.net.on_delivery(
            lambda msg: events.append((msg.deliver_time, msg.tag, msg.src, msg.dst))
        )
        runner.run()
        # For each iteration, find the last push delivery of the slowest
        # worker and the first reply delivery to a fast worker.
        push_last = max(t for t, tag, src, _dst in events if tag == "push" and src == "worker2")
        replies_before = [
            t for t, tag, _src, dst in events
            if tag == "reply" and dst != "worker2" and t < push_last
        ]
        assert replies_before, "no reply overlapped the straggler's pushes"


class TestFilterWireAccounting:
    def test_topk_reduces_push_bytes_only(self):
        n = 4

        def cfg(factory):
            return SimConfig(
                cluster=cpu_cluster(n, 1), max_iter=30, sync=ssp(2),
                task=blobs_task(n, n_train=200, n_test=60, seed=1),
                seed=2, base_compute_time=0.4,
                compute_model=DeterministicCompute(),
                push_filter_factory=factory,
            )

        dense = run_fluentps(cfg(None))
        sparse = run_fluentps(cfg(lambda: TopKFilter(0.05)))
        assert sparse.bytes_on_wire < dense.bytes_on_wire
        # Pull replies stay dense: the saving is bounded by the push share.
        assert sparse.bytes_on_wire > 0.4 * dense.bytes_on_wire

    def test_filtered_training_matches_unfiltered_quality(self):
        n = 4

        def final_acc(factory):
            task = blobs_task(n, n_train=600, n_test=150, seed=3)
            r = run_fluentps(SimConfig(
                cluster=cpu_cluster(n, 1), max_iter=150, sync=ssp(2),
                task=task, seed=4, base_compute_time=0.4,
                push_filter_factory=factory,
            ))
            return task.eval_fn(r.final_params)

        assert final_acc(lambda: TopKFilter(0.25)) > final_acc(None) - 0.1


class TestPSLiteGrantSemantics:
    def test_bounded_delay_grants_within_staleness(self):
        """PS-Lite with bounded delay s: a worker's pull phase never
        starts more than s iterations ahead of the global frontier."""
        from repro.baselines.pslite import PSLiteSimRunner

        n = 4
        cfg = SimConfig(
            cluster=gpu_cluster_p2(n, 2),
            max_iter=12,
            sync=ssp(2),
            workload=workload_for("alexnet"),
            batch_per_worker=64,
            compute_model=TransientStragglerCompute(n, slow_factor=3.0, period=6,
                                                    duration=3),
            seed=1,
        )
        runner = PSLiteSimRunner(cfg)
        grants = []
        original = runner._grantable

        def checked(progress):
            ok = original(progress)
            if ok:
                grants.append((progress, runner._sched_frontier))
            return ok

        runner._grantable = checked
        runner.run()
        assert grants
        for progress, frontier in grants:
            assert progress < frontier + 2
