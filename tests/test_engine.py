"""Unit + property tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (
    AllOf,
    Engine,
    Resource,
    SimulationError,
    Store,
    Timeout,
)


class TestScheduling:
    def test_call_in_runs_at_right_time(self):
        eng = Engine()
        seen = []
        eng.call_in(2.0, lambda: seen.append(eng.now))
        eng.call_in(1.0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [1.0, 2.0]

    def test_fifo_at_equal_times(self):
        eng = Engine()
        seen = []
        for i in range(10):
            eng.call_in(1.0, lambda i=i: seen.append(i))
        eng.run()
        assert seen == list(range(10))

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.call_in(-0.1, lambda: None)

    def test_call_at_past_rejected(self):
        eng = Engine()
        eng.call_in(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(1.0, lambda: None)

    def test_run_until_stops_clock_at_until(self):
        eng = Engine()
        eng.call_in(10.0, lambda: None)
        eng.run(until=3.0)
        assert eng.now == 3.0
        assert eng.pending_events == 1
        eng.run()
        assert eng.now == 10.0

    def test_run_until_beyond_last_event_advances_clock(self):
        eng = Engine()
        eng.call_in(1.0, lambda: None)
        eng.run(until=7.5)
        assert eng.now == 7.5

    def test_max_events_budget(self):
        eng = Engine()
        for _ in range(5):
            eng.call_in(1.0, lambda: None)
        eng.run(max_events=3)
        assert eng.events_processed == 3
        assert eng.pending_events == 2

    def test_nested_scheduling(self):
        eng = Engine()
        seen = []

        def outer():
            seen.append(("outer", eng.now))
            eng.call_in(1.5, lambda: seen.append(("inner", eng.now)))

        eng.call_in(1.0, outer)
        eng.run()
        assert seen == [("outer", 1.0), ("inner", 2.5)]


class TestSignal:
    def test_fire_resumes_waiters_with_payload(self):
        eng = Engine()
        sig = eng.signal("s")
        got = []
        sig.subscribe(got.append)
        sig.subscribe(got.append)
        sig.fire(42)
        eng.run()
        assert got == [42, 42]

    def test_subscribe_after_fire_immediate(self):
        eng = Engine()
        sig = eng.signal()
        sig.fire("x")
        got = []
        sig.subscribe(got.append)
        eng.run()
        assert got == ["x"]

    def test_double_fire_rejected(self):
        eng = Engine()
        sig = eng.signal("dup")
        sig.fire()
        with pytest.raises(SimulationError):
            sig.fire()

    def test_payload_before_fire_rejected(self):
        eng = Engine()
        sig = eng.signal()
        with pytest.raises(SimulationError):
            _ = sig.payload

    def test_foreign_engine_rejected(self):
        a, b = Engine(), Engine()
        sig = a.signal()
        with pytest.raises(SimulationError):
            sig._subscribe(b, lambda _: None)


class TestProcess:
    def test_simple_timeout_process(self):
        eng = Engine()
        log = []

        def proc():
            log.append(eng.now)
            yield Timeout(2.0)
            log.append(eng.now)
            yield Timeout(3.0)
            log.append(eng.now)
            return "done"

        p = eng.spawn(proc())
        eng.run()
        assert log == [0.0, 2.0, 5.0]
        assert p.finished and p.result == "done"

    def test_process_waits_on_signal(self):
        eng = Engine()
        sig = eng.signal()
        got = []

        def waiter():
            value = yield sig
            got.append((eng.now, value))

        eng.spawn(waiter())
        eng.call_in(4.0, lambda: sig.fire("hello"))
        eng.run()
        assert got == [(4.0, "hello")]

    def test_process_join(self):
        eng = Engine()

        def child():
            yield Timeout(1.0)
            return 99

        def parent():
            result = yield eng.spawn(child())
            return result + 1

        p = eng.spawn(parent())
        eng.run()
        assert p.result == 100

    def test_yield_non_waitable_raises(self):
        eng = Engine()

        def bad():
            yield "not a waitable"

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_yield_bare_number_is_timeout(self):
        eng = Engine()
        seen = []

        def proc():
            got = yield 1.5
            seen.append((eng.now, got))
            got = yield 2  # ints work too
            seen.append((eng.now, got))

        eng.spawn(proc())
        eng.run()
        assert seen == [(1.5, None), (3.5, None)]

    def test_yield_negative_number_raises(self):
        eng = Engine()

        def bad():
            yield -0.5

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_all_of_collects_in_order(self):
        eng = Engine()
        s1, s2 = eng.signal(), eng.signal()
        got = []

        def waiter():
            values = yield AllOf(eng, [s1, s2, Timeout(1.0, "t")])
            got.append((eng.now, values))

        eng.spawn(waiter())
        eng.call_in(5.0, lambda: s1.fire("a"))
        eng.call_in(2.0, lambda: s2.fire("b"))
        eng.run()
        assert got == [(5.0, ["a", "b", "t"])]

    def test_all_of_empty(self):
        eng = Engine()
        got = []

        def waiter():
            values = yield eng.all_of([])
            got.append(values)

        eng.spawn(waiter())
        eng.run()
        assert got == [[]]


class TestResource:
    def test_fifo_serialization(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def user(i, hold):
            yield res.acquire()
            yield Timeout(hold)
            order.append((i, eng.now))
            res.release()

        for i in range(3):
            eng.spawn(user(i, 2.0))
        eng.run()
        assert order == [(0, 2.0), (1, 4.0), (2, 6.0)]

    def test_capacity_two_overlaps(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        order = []

        def user(i):
            yield res.acquire()
            yield Timeout(2.0)
            order.append((i, eng.now))
            res.release()

        for i in range(4):
            eng.spawn(user(i))
        eng.run()
        assert [t for _i, t in order] == [2.0, 2.0, 4.0, 4.0]

    def test_release_idle_rejected(self):
        eng = Engine()
        res = Resource(eng)
        with pytest.raises(SimulationError):
            res.release()

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), capacity=0)

    def test_queue_length_tracking(self):
        eng = Engine()
        res = Resource(eng)
        res.acquire()
        res.acquire()
        res.acquire()
        assert res.in_use == 1
        assert res.queue_length == 2


class TestStore:
    def test_put_then_get(self):
        eng = Engine()
        store = Store(eng)
        store.put("a")
        store.put("b")
        got = []
        store.get().subscribe(got.append)
        store.get().subscribe(got.append)
        eng.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def consumer():
            item = yield store.get()
            got.append((eng.now, item))

        eng.spawn(consumer())
        eng.call_in(3.0, lambda: store.put("late"))
        eng.run()
        assert got == [(3.0, "late")]

    def test_len(self):
        eng = Engine()
        store = Store(eng)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestDeterminism:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_time_monotonic_and_repeatable(self, delays):
        def run():
            eng = Engine()
            seen = []
            for i, d in enumerate(delays):
                eng.call_in(d, lambda i=i: seen.append((eng.now, i)))
            eng.run()
            return seen

        a, b = run(), run()
        assert a == b
        times = [t for t, _ in a]
        assert times == sorted(times)

    @given(
        holds=st.lists(
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False), min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_resource_conserves_total_hold(self, holds):
        eng = Engine()
        res = Resource(eng, capacity=1)
        done = []

        def user(hold):
            yield res.acquire()
            yield Timeout(hold)
            res.release()
            done.append(eng.now)

        for h in holds:
            eng.spawn(user(h))
        eng.run()
        assert len(done) == len(holds)
        assert done[-1] == pytest.approx(sum(holds))


class TestCallEvery:
    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            Engine().call_every(0.0, lambda: None)

    def test_daemon_ticks_stop_with_workload(self):
        eng = Engine()
        ticks = []

        def work():
            yield Timeout(5.0)

        eng.spawn(work())
        eng.call_every(1.0, lambda: ticks.append(eng.now))
        end = eng.run()
        # the sampler never keeps the drained simulation alive
        assert end == pytest.approx(5.0)
        assert ticks == pytest.approx([1.0, 2.0, 3.0, 4.0, 5.0])

    def test_two_daemons_drain_together(self):
        eng = Engine()
        eng.call_every(1.0, lambda: None)
        eng.call_every(2.0, lambda: None)
        end = eng.run(max_events=100)
        # with no real work both samplers die after their first tick
        assert end <= 2.0
        assert eng.pending_events == 0


class TestCancellation:
    def test_cancel_prevents_execution(self):
        eng = Engine()
        seen = []
        handle = eng.schedule(1.0, seen.append, "cancelled")
        eng.schedule(2.0, seen.append, "kept")
        assert handle.cancel()
        eng.run()
        assert seen == ["kept"]

    def test_cancel_is_idempotent(self):
        eng = Engine()
        handle = eng.schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()
        assert handle.cancelled

    def test_cancel_after_run_returns_false(self):
        eng = Engine()
        seen = []
        handle = eng.schedule(1.0, seen.append, "ran")
        eng.run()
        assert seen == ["ran"]
        assert not handle.cancel()

    def test_pending_events_excludes_tombstones(self):
        eng = Engine()
        handles = [eng.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert eng.pending_events == 4
        handles[1].cancel()
        handles[2].cancel()
        assert eng.pending_events == 2
        eng.run()
        assert eng.pending_events == 0
        assert eng.events_processed == 2

    def test_cancelled_event_skipped_with_until(self):
        eng = Engine()
        seen = []
        handle = eng.schedule(1.0, seen.append, "dead")
        eng.schedule(3.0, seen.append, "alive")
        handle.cancel()
        eng.run(until=2.0)
        assert seen == []
        assert eng.now == pytest.approx(2.0)
        eng.run()
        assert seen == ["alive"]

    def test_schedule_multi_arg_callback(self):
        eng = Engine()
        seen = []
        eng.schedule(0.5, lambda a, b: seen.append((a, b)), 1, 2)
        eng.call_in(0.5, lambda a, b, c: seen.append((a, b, c)), 3, 4, 5)
        eng.run()
        assert seen == [(1, 2), (3, 4, 5)]


class TestTieOrderUnderCancellation:
    """Tombstone cancellation must never reorder surviving same-time events.

    Satellite property for the schedule explorer: its FIFO-default choice
    hook assumes tie groups present candidates in seq (schedule) order
    even after cancel + re-post churn at the same timestamp.
    """

    @given(
        n=st.integers(min_value=3, max_value=8),
        cancel_mask=st.lists(st.booleans(), min_size=3, max_size=8),
        n_repost=st.integers(min_value=0, max_value=4),
        use_hook=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_survivors_run_in_schedule_order(self, n, cancel_mask, n_repost, use_hook):
        eng = Engine()
        if use_hook:
            # A hook that always takes the default must be a no-op.
            eng.set_choice_hook(lambda when, group: 0)
        seen = []
        handles = [eng.schedule(1.0, seen.append, i) for i in range(n)]
        mask = (cancel_mask * n)[:n]
        for h, dead in zip(handles, mask):
            if dead:
                h.cancel()
        # Re-post at the *same* timestamp after cancelling: the new events
        # take fresh seqs, so they run after every original survivor.
        for j in range(n_repost):
            eng.schedule(1.0, seen.append, n + j)
        eng.run()
        survivors = [i for i, dead in enumerate(mask) if not dead]
        assert seen == survivors + [n + j for j in range(n_repost)]

    @given(
        cancel_idx=st.integers(min_value=0, max_value=5),
        use_hook=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_cancel_then_repost_same_slot(self, cancel_idx, use_hook):
        eng = Engine()
        if use_hook:
            eng.set_choice_hook(lambda when, group: 0)
        seen = []
        handles = [eng.schedule(2.0, seen.append, i) for i in range(6)]
        handles[cancel_idx].cancel()
        eng.schedule(2.0, seen.append, "repost")
        eng.run()
        expected = [i for i in range(6) if i != cancel_idx] + ["repost"]
        assert seen == expected

    @given(
        n_fill=st.integers(min_value=520, max_value=580),
        k=st.integers(min_value=0, max_value=580),
        n_tie=st.integers(min_value=3, max_value=6),
        cancel_mask=st.lists(st.booleans(), min_size=3, max_size=6),
        n_repost=st.integers(min_value=1, max_value=3),
        repost_live=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_fast_forward_never_skips_repost_at_window_boundary(
        self, n_fill, k, n_tie, cancel_mask, n_repost, repost_live
    ):
        """Extension of the tie-order property to the fast-forward engine.

        A tombstoned-then-reposted event at the *same timestamp* must run
        even when that timestamp straddles the mesoscale window boundary
        (the first ``_CAL_NEAR`` events go into the presorted window, the
        rest into calendar buckets; a live re-post lands in the raw heap
        and must merge back in).  ``n_fill`` exceeds the window size so
        the boundary falls inside the filler run, and ``k`` sweeps the
        tie group's timestamp across it.  The oracle is the plain binary
        heap: both engines must observe the identical event sequence.
        """
        k = min(k, n_fill)
        tie_t = 10.0 + 0.01 * k  # collides with filler k: a boundary tie

        def build(eng, seen):
            for i in range(n_fill):
                eng.call_at(10.0 + 0.01 * i, seen.append, ("fill", i))
            handles = [
                eng.schedule(tie_t, seen.append, ("tie", i)) for i in range(n_tie)
            ]
            mask = (cancel_mask * n_tie)[:n_tie]
            for h, dead in zip(handles, mask):
                if dead:
                    h.cancel()
            repost = [
                (tie_t, seen.append, ("repost", j)) for j in range(n_repost)
            ]
            if repost_live:
                # Re-post from *inside* the run, just before the tie time:
                # by then the sweep has windowed/bucketed the originals.
                eng.call_at(
                    tie_t - 0.005,
                    lambda: [eng.call_at(*args) for args in repost],
                )
            else:
                for args in repost:
                    eng.call_at(*args)

        fast = Engine(calendar_threshold=16)
        slow = Engine(calendar=False)
        seen_fast, seen_slow = [], []
        build(fast, seen_fast)
        build(slow, seen_slow)
        fast.run()
        slow.run()
        assert seen_fast == seen_slow
        assert fast.calendar_sweeps >= 1  # the fast path actually engaged
        reposts = [x for x in seen_fast if x[0] == "repost"]
        assert reposts == [("repost", j) for j in range(n_repost)]
        assert fast.now == slow.now
        assert fast.events_processed == slow.events_processed
