"""Differential tests: mesoscale fast-forward vs the plain heap engine.

The fast-forward window and calendar queue promise *exact* semantic
equivalence at the whole-simulation level — every delivered message, the
final clock, and trained parameters must be byte-identical whether the
engine drains a flat binary heap (``engine_calendar=False``) or sweeps,
windows, and fast-forwards.  These tests run entire co-simulated
training runs on every cluster preset × sync model × compute model cell
with a tiny calendar threshold (so the fast path actually engages even
at test-sized clusters) and compare full delivery traces, then check the
counters the obs snapshotter and perf suite surface, and sanitize a
1k-worker-scale trace — the mesoscale point the engine work targets.
"""

import json

import numpy as np
import pytest

from repro.analysis import sanitize_observability
from repro.bench.workloads import blobs_task
from repro.core.models import bsp, pssp, ssp
from repro.core.server import ExecutionMode
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.obs import MetricsRegistry, Observability
from repro.sim.cluster import cpu_cluster, gpu_cluster_p2
from repro.sim.engine import Engine
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.stragglers import (
    DeterministicCompute,
    LogNormalCompute,
    cpu_cluster_compute,
)


def _preset_configs():
    """One runner config per (preset, sync model, compute) cell."""
    workload = alexnet_cifar_workload()
    cells = []
    for name, cluster in [
        ("gpu_p2", gpu_cluster_p2(4, n_servers=2)),
        ("cpu", cpu_cluster(4, n_servers=2)),
    ]:
        for sync_name, sync in [("ssp3", ssp(3)), ("bsp", bsp()), ("pssp", pssp(2, 0.5))]:
            for comp_name, compute in [
                ("det", DeterministicCompute()),
                ("lognorm", LogNormalCompute(0.3)),
            ]:
                cells.append(
                    pytest.param(
                        dict(
                            cluster=cluster,
                            max_iter=6,
                            sync=sync,
                            workload=workload,
                            batch_per_worker=64,
                            compute_model=compute,
                            seed=7,
                        ),
                        id=f"{name}-{sync_name}-{comp_name}",
                    )
                )
    return cells


def _run_traced(cfg_kwargs, calendar):
    """One full run with a delivery trace, on the chosen engine backend.

    ``calendar=True`` forces a near-zero sweep threshold so windows form
    even at 4-worker scale; ``False`` is the flat-heap oracle.
    """
    cfg = SimConfig(
        engine_calendar=calendar,
        engine_calendar_threshold=4 if calendar else None,
        **cfg_kwargs,
    )
    runner = FluentPSSimRunner(cfg)
    trace = []
    runner.net.on_delivery(
        lambda m: trace.append(
            (m.msg_id, m.src, m.dst, m.tag, m.size_bytes, m.send_time, m.deliver_time)
        )
    )
    result = runner.run()
    return trace, result, runner


class TestPresetDifferential:
    """Entire co-simulated runs on each preset: byte-identical traces."""

    @pytest.mark.parametrize("cfg_kwargs", _preset_configs())
    def test_run_traces_identical(self, cfg_kwargs):
        fast_trace, fast_result, fast_runner = _run_traced(cfg_kwargs, True)
        slow_trace, slow_result, slow_runner = _run_traced(cfg_kwargs, False)
        # Serialize through JSON so the comparison is on bytes, not on
        # float objects that might compare equal after rounding.
        assert json.dumps(fast_trace) == json.dumps(slow_trace)
        assert fast_trace  # the run actually produced traffic
        assert fast_result.duration == slow_result.duration
        assert fast_result.messages_on_wire == slow_result.messages_on_wire
        assert fast_result.bytes_on_wire == slow_result.bytes_on_wire
        assert fast_result.total_comm_time == slow_result.total_comm_time
        assert fast_runner.engine.events_processed == slow_runner.engine.events_processed
        # The fast path engaged (tiny threshold) and the oracle did not.
        assert fast_runner.engine.calendar_sweeps > 0
        assert slow_runner.engine.calendar_sweeps == 0
        assert slow_runner.engine.events_skipped == 0

    def test_training_run_params_identical(self):
        """A real (non-timing-only) run: final parameters are bit-equal.

        The task is built fresh per run — training mutates it in place,
        so sharing one instance would compare run 2 against run 1's
        trained state instead of backend A against backend B.
        """

        def kwargs():
            return dict(
                cluster=cpu_cluster(3, n_servers=2),
                max_iter=8,
                sync=ssp(2),
                task=blobs_task(3, n_train=120, n_test=60),
                execution=ExecutionMode.SOFT_BARRIER,
                compute_model=LogNormalCompute(0.2),
                seed=11,
            )

        _, fast_result, fast_runner = _run_traced(kwargs(), True)
        _, slow_result, _ = _run_traced(kwargs(), False)
        assert fast_runner.engine.calendar_sweeps > 0
        assert fast_result.final_params is not None
        assert np.array_equal(fast_result.final_params, slow_result.final_params)
        assert fast_result.duration == slow_result.duration


class TestCounters:
    """events_skipped / windows_collapsed — what obs and perf surface."""

    def test_counters_accumulate_on_fast_path(self):
        eng = Engine(calendar_threshold=16)
        for i in range(2_000):
            eng.call_in(1.0 + 0.001 * i, lambda: None)
        eng.run()
        assert eng.events_skipped > 0
        assert eng.windows_collapsed > 0
        assert eng.calendar_sweeps >= 1
        # Skipped events were still processed — skipping is about heap
        # maintenance, never about dropping work.
        assert eng.events_processed == 2_000

    def test_runner_exposes_engine_counters(self):
        cfg = SimConfig(
            cluster=cpu_cluster(4, n_servers=2),
            max_iter=4,
            sync=ssp(3),
            workload=alexnet_cifar_workload(),
            compute_model=DeterministicCompute(),
            seed=3,
            engine_calendar_threshold=4,
        )
        runner = FluentPSSimRunner(cfg)
        runner.run()
        eng = runner.engine
        assert eng.calendar_enabled is True
        assert eng.calendar_sweeps > 0
        assert eng.events_skipped > 0

    def test_snapshot_gauges_record_fast_forward_health(self):
        obs = Observability(MetricsRegistry("ff"))
        cfg = SimConfig(
            cluster=cpu_cluster(4, n_servers=2),
            max_iter=4,
            sync=ssp(3),
            workload=alexnet_cifar_workload(),
            compute_model=DeterministicCompute(),
            seed=3,
            engine_calendar_threshold=4,
            obs=obs,
        )
        runner = FluentPSSimRunner(cfg)
        runner.run()
        reg = obs.registry
        for name in (
            "engine_events_skipped",
            "engine_windows_collapsed",
            "engine_calendar_sweeps",
            "engine_events_elided",
            "engine_quiet_regions",
            "net_fused_deliveries",
            "ps_dispatch_inline",
            "ps_dispatch_drained",
        ):
            assert reg.gauge(name).value() >= 0.0
        # finalize() lands the post-drain totals in the last sample.
        skipped = reg.gauge("engine_events_skipped").value()
        assert skipped == runner.engine.events_skipped > 0
        assert (
            reg.gauge("engine_events_elided").value()
            == runner.engine.events_elided
        )
        assert (
            reg.gauge("engine_pending_event_hwm").value()
            == runner.engine.pending_high_water
            > 0
        )
        assert (
            reg.gauge("ps_dispatch_inline").value() == runner.server_msgs_inline
        )


class TestMesoscaleSanitized:
    """A 1k-worker-scale point through the protocol sanitizer."""

    # Explicit Observability below; the ambient conftest bundle would
    # double-report the same stream.
    pytestmark = pytest.mark.no_sanitize

    def test_1k_worker_trace_is_clean(self):
        n = 1_000
        obs = Observability(MetricsRegistry("meso"))
        cfg = SimConfig(
            cluster=cpu_cluster(n, n_servers=8),
            max_iter=1,
            sync=ssp(3),
            workload=alexnet_cifar_workload(),
            compute_model=cpu_cluster_compute(n),
            seed=3,
            obs=obs,
            # 1k workers peaks below the shipped 32k constant (tuned for
            # 10k-worker runs); engage the calendar explicitly so this
            # cell sanitizes the fast-forward path, not the plain heap.
            engine_calendar_threshold=4096,
        )
        runner = FluentPSSimRunner(cfg)
        runner.run()
        assert runner.engine.calendar_sweeps > 0  # past the explicit threshold
        assert runner.engine.events_skipped > 0
        report = sanitize_observability(obs)
        assert report.ok, report.describe()
        assert report.n_events > 0
