"""Tests for the NIC/fabric network model."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import Network, NicSpec


def make_net(latency=0.0, bw=100.0, overhead=0.0, fabric=None):
    eng = Engine()
    net = Network(eng, latency_s=latency, fabric_concurrency=fabric)
    nic = NicSpec(bandwidth_Bps=bw, overhead_s=overhead)
    net.add_node("a", nic)
    net.add_node("b", nic)
    net.add_node("c", nic)
    return eng, net


class TestNicSpec:
    def test_serialize_time(self):
        nic = NicSpec(bandwidth_Bps=1000.0, overhead_s=0.5)
        assert nic.serialize_time(2000) == pytest.approx(0.5 + 2.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NicSpec(bandwidth_Bps=0)

    def test_negative_overhead(self):
        with pytest.raises(ValueError):
            NicSpec(bandwidth_Bps=1.0, overhead_s=-1)


class TestTransfer:
    def test_uncontended_transfer_time(self):
        eng, net = make_net(latency=1.0, bw=100.0)
        done = []
        net.send("a", "b", 200).subscribe(lambda m: done.append(eng.now))
        eng.run()
        # 2s tx serialize + 1s latency + 2s rx serialize
        assert done == [pytest.approx(5.0)]

    def test_estimate_matches_uncontended(self):
        eng, net = make_net(latency=1.0, bw=100.0)
        est = net.transfer_time_estimate("a", "b", 200)
        done = []
        net.send("a", "b", 200).subscribe(lambda m: done.append(eng.now))
        eng.run()
        assert done[0] == pytest.approx(est)

    def test_tx_lane_serializes_sends(self):
        eng, net = make_net(bw=100.0)
        done = []
        net.send("a", "b", 100).subscribe(lambda m: done.append(("b", eng.now)))
        net.send("a", "c", 100).subscribe(lambda m: done.append(("c", eng.now)))
        eng.run()
        # Second transfer's tx serialization starts after the first's.
        assert done == [("b", pytest.approx(2.0)), ("c", pytest.approx(3.0))]

    def test_rx_incast_serializes(self):
        eng, net = make_net(bw=100.0)
        done = []
        net.send("a", "c", 100).subscribe(lambda m: done.append(eng.now))
        net.send("b", "c", 100).subscribe(lambda m: done.append(eng.now))
        eng.run()
        # Both serialize tx in parallel (different senders), then queue on
        # c's rx lane: 1s + 1s, 1s + 2s.
        assert done == [pytest.approx(2.0), pytest.approx(3.0)]

    def test_fifo_order_preserved_per_pair(self):
        eng, net = make_net(bw=100.0)
        order = []
        for i in range(5):
            net.send("a", "b", 50, tag=str(i)).subscribe(
                lambda m: order.append(m.tag)
            )
        eng.run()
        assert order == ["0", "1", "2", "3", "4"]

    def test_inbox_delivery(self):
        eng, net = make_net()
        net.send("a", "b", 10, payload={"k": 1})
        eng.run()
        inbox = net.endpoint("b").inbox
        assert len(inbox) == 1
        got = []
        inbox.get().subscribe(got.append)
        eng.run()
        assert got[0].payload == {"k": 1}

    def test_no_inbox_delivery_flag(self):
        eng, net = make_net()
        net.send("a", "b", 10, deliver_to_inbox=False)
        eng.run()
        assert len(net.endpoint("b").inbox) == 0

    def test_negative_size_rejected(self):
        eng, net = make_net()
        with pytest.raises(ValueError):
            net.send("a", "b", -1)

    def test_unknown_node_rejected(self):
        eng, net = make_net()
        with pytest.raises(KeyError):
            net.send("a", "zzz", 10)

    def test_duplicate_node_rejected(self):
        eng, net = make_net()
        with pytest.raises(ValueError):
            net.add_node("a", NicSpec(bandwidth_Bps=1.0))


class TestAccounting:
    def test_byte_and_message_counters(self):
        eng, net = make_net()
        net.send("a", "b", 100)
        net.send("a", "c", 50)
        eng.run()
        assert net.total_bytes == 150
        assert net.total_messages == 2
        assert net.endpoint("a").bytes_sent == 150
        assert net.endpoint("a").messages_sent == 2
        assert net.endpoint("b").bytes_received == 100
        assert net.endpoint("c").messages_received == 1

    def test_delivery_hook_called(self):
        eng, net = make_net()
        seen = []
        net.on_delivery(lambda m: seen.append((m.src, m.dst, m.size_bytes)))
        net.send("a", "b", 10)
        eng.run()
        assert seen == [("a", "b", 10)]

    def test_message_timestamps(self):
        eng, net = make_net(latency=1.0, bw=100.0)
        box = []
        net.send("a", "b", 100).subscribe(box.append)
        eng.run()
        msg = box[0]
        assert msg.send_time == 0.0
        assert msg.deliver_time == pytest.approx(3.0)


class TestFabric:
    def test_fabric_concurrency_cap(self):
        eng, net = make_net(bw=100.0, fabric=1)
        done = []
        net.send("a", "c", 100).subscribe(lambda m: done.append(eng.now))
        net.send("b", "c", 100).subscribe(lambda m: done.append(eng.now))
        eng.run()
        # With one fabric slot the second transfer cannot even start tx
        # until the first fully completes.
        assert done[0] == pytest.approx(2.0)
        assert done[1] == pytest.approx(4.0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            Network(Engine(), latency_s=-1.0)


class TestAccounting:
    def test_bytes_in_flight_returns_to_zero(self):
        eng, net = make_net(latency=1.0, bw=100.0)
        net.send("a", "b", 100)
        net.send("a", "c", 50)
        assert net.bytes_in_flight == 150
        assert net.messages_in_flight == 2
        eng.run()
        assert net.bytes_in_flight == 0
        assert net.messages_in_flight == 0
        assert net.total_bytes == 150

    def test_nic_utilization_bounds(self):
        eng, net = make_net(latency=1.0, bw=100.0)
        net.send("a", "b", 100)  # 1s tx + 1s latency + 1s rx
        eng.run()
        a, b = net.endpoints["a"], net.endpoints["b"]
        assert a.tx_busy_s == pytest.approx(1.0)
        assert b.rx_busy_s == pytest.approx(1.0)
        assert 0.0 < a.tx_utilization(eng.now) <= 1.0
        assert a.rx_utilization(eng.now) == 0.0
        assert a.tx_utilization(0.0) == 0.0  # no elapsed time -> 0
