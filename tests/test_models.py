"""Tests for the synchronization-model registry."""

import math

import pytest

from repro.core.conditions import DSPSPull, PSSPPull
from repro.core.models import (
    SUPPORTED_MODELS,
    asp,
    bsp,
    drop_stragglers,
    dsps,
    dynamic_pssp,
    make_model,
    pssp,
    ssp,
)


class TestFactories:
    def test_bsp(self):
        m = bsp()
        assert m.staleness == 0
        assert m.make_pull().staleness() == 0

    def test_asp(self):
        assert math.isinf(asp().staleness)

    def test_ssp_params(self):
        m = ssp(4)
        assert m.params["s"] == 4
        with pytest.raises(ValueError):
            ssp(-1)

    def test_pssp_params(self):
        m = pssp(3, 0.25)
        assert m.params == {"s": 3, "c": 0.25}
        with pytest.raises(ValueError):
            pssp(-1, 0.5)

    def test_dynamic_pssp_accepts_callable(self):
        m = dynamic_pssp(2, lambda v: 0.5)
        assert m.params["alpha"] == "fn"

    def test_drop_stragglers_defaults(self):
        m = drop_stragglers(8)
        assert m.params["n_t"] == 6  # 75% of 8
        with pytest.raises(ValueError):
            drop_stragglers(4, n_t=5)

    def test_describe_runs(self):
        for m in (bsp(), asp(), ssp(2), dsps(), drop_stragglers(4), pssp(2, 0.5)):
            assert m.name.split("(")[0] in m.describe()


class TestPerServerInstances:
    def test_dsps_state_not_shared_between_servers(self):
        model = dsps(s0=2, window=5)
        a: DSPSPull = model.make_pull()
        b: DSPSPull = model.make_pull()
        assert a is not b
        for _ in range(5):
            a.observe(blocked=True)
        assert a.s != b.s

    def test_pssp_counters_not_shared(self):
        model = pssp(1, 0.5)
        a: PSSPPull = model.make_pull()
        b: PSSPPull = model.make_pull()
        assert a is not b
        assert a.coin_flips == 0 and b.coin_flips == 0


class TestMakeModel:
    def test_all_supported_kinds_constructible(self):
        kwargs = {
            "bsp": {},
            "asp": {},
            "ssp": {"s": 2},
            "dsps": {},
            "drop_stragglers": {"n_t": 3},
            "pssp": {"s": 2, "c": 0.5},
            "dynamic_pssp": {"s": 2, "alpha": 0.5},
        }
        for kind in SUPPORTED_MODELS:
            m = make_model(kind, n_workers=4, **kwargs[kind])
            assert m.make_pull() is not None
            assert m.make_push() is not None

    def test_hyphen_normalized(self):
        assert make_model("drop-stragglers", n_workers=4).params["n_t"] == 3

    def test_drop_stragglers_requires_n(self):
        with pytest.raises(ValueError):
            make_model("drop_stragglers")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown synchronization model"):
            make_model("turbo")
