"""Legacy shim so ``pip install -e .`` works offline (no wheel package).

All real metadata lives in pyproject.toml; this file only enables the
setuptools legacy editable-install path.
"""

from setuptools import setup

setup()
