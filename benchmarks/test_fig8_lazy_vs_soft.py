"""Figure 8: lazy execution vs soft barrier (SSP s=2, 32 workers)."""

from repro.bench.figures import fig8_lazy_vs_soft


def test_fig8_lazy_vs_soft(run_experiment, scale):
    result = run_experiment(fig8_lazy_vs_soft, scale)
    soft = result.find("soft")
    lazy = result.find("lazy")
    # Lazy execution is faster (paper: 1.21x) ...
    assert lazy.metrics["duration"] < soft.metrics["duration"]
    # ... with far fewer DPRs (paper: up to 131x fewer) ...
    assert lazy.metrics["dprs_per_100"] < 0.5 * soft.metrics["dprs_per_100"]
    # ... and no worse accuracy (robust convergence).
    assert lazy.metrics["final_acc"] > soft.metrics["final_acc"] - 0.05
