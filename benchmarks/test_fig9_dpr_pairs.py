"""Figure 9: DPR counts of regret-matched PSSP(s=3, c) vs SSP(s') pairs."""

from repro.bench.figures import FIG9_GROUPS, fig9_dpr_pairs


def test_fig9_dpr_pairs(run_experiment, scale):
    result = run_experiment(fig9_dpr_pairs, scale)
    # Under the soft barrier every PSSP member beats its matched SSP
    # partner on DPRs, and the saving grows as c shrinks (G vs H largest).
    savings = []
    for label, _c, _name in FIG9_GROUPS:
        rec = result.find(f"{label}_soft")
        assert rec.metrics["pssp_dprs"] < rec.metrics["ssp_dprs"], label
        savings.append(1 - rec.metrics["pssp_dprs"] / rec.metrics["ssp_dprs"])
    assert savings[-1] == max(savings)  # G/H shows the largest saving
    assert savings[-1] > 0.5  # paper: up to 97.1%
    # Lazy execution already removes most DPRs for both models.
    for label, _c, _name in FIG9_GROUPS:
        soft = result.find(f"{label}_soft")
        lazy = result.find(f"{label}_lazy")
        assert lazy.metrics["ssp_dprs"] < soft.metrics["ssp_dprs"]
    # Per-window series exist for every arm (the figure's x-axis).
    assert len(result.series) == 4 * len(FIG9_GROUPS)
    for series in result.series:
        assert len(series) >= 1 and all(v >= 0 for v in series.y)
