"""Table I: FluentPS expresses every synchronization model via conditions."""

from repro.bench.tables import table1_model_matrix
from repro.core.models import SUPPORTED_MODELS


def test_table1_model_matrix(run_experiment):
    result = run_experiment(table1_model_matrix)
    names = {row[0].split("(")[0] for row in result.rows}
    # Every model family from the paper's FluentPS row is instantiable.
    for family in ("bsp", "asp", "ssp", "dsps", "drop_stragglers", "pssp", "dynamic_pssp"):
        assert family in names, f"missing {family}"
    assert set(SUPPORTED_MODELS) == names
