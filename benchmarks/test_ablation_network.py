"""Ablation: the overlap/EPS win across network regimes."""

from repro.bench.ablations import ablation_network_sensitivity


def test_ablation_network_sensitivity(run_experiment, scale):
    result = run_experiment(ablation_network_sensitivity, scale)
    for rec in result.records:
        assert rec.metrics["speedup"] > 1.0, rec.name
    # Less bandwidth -> bigger win for overlap (comm matters more).
    half = result.find("half-bandwidth").metrics["speedup"]
    double = result.find("double-bandwidth").metrics["speedup"]
    assert half > double
