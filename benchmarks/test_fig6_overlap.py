"""Figure 6: comp/comm breakdown — PS-Lite vs FluentPS vs FluentPS+EPS."""

from repro.bench.figures import fig6_overlap


def test_fig6_overlap(run_experiment, scale):
    result = run_experiment(fig6_overlap, scale)
    # Largest cluster in the sweep carries the headline claims.
    ns = sorted({int(r.name.split("_N")[1]) for r in result.records})
    n = ns[-1]
    ps = result.find(f"pslite_N{n}")
    fl = result.find(f"fluentps_N{n}")
    eps = result.find(f"fluentps+eps_N{n}")

    # PS-Lite: communication grows to dominate the iteration time.
    assert ps.metrics["comm"] > ps.metrics["compute"]
    # Overlap synchronization beats non-overlap markedly at scale.
    assert fl.metrics["speedup"] > 1.5
    # EPS adds a further speedup on top of overlap.
    assert eps.metrics["duration"] <= fl.metrics["duration"]
    # Communication-time reduction in the paper's direction (>=50%).
    assert eps.metrics["comm"] < 0.5 * ps.metrics["comm"]
    # Speedup grows with cluster size (the scalability claim).
    speedups = [result.find(f"fluentps+eps_N{m}").metrics["speedup"] for m in ns]
    assert speedups[-1] >= speedups[0]
