"""Ablation: push filters — wire-byte savings at preserved accuracy."""

from repro.bench.ablations import ablation_push_filters


def test_ablation_push_filters(run_experiment, scale):
    result = run_experiment(ablation_push_filters, scale)
    none = result.find("none")
    topk = result.find("topk(0.05)")
    # Aggressive top-k cuts the wire substantially ...
    assert topk.metrics["wire_bytes"] < 0.7 * none.metrics["wire_bytes"]
    # ... without destroying accuracy (residual accumulation preserves mass).
    assert topk.metrics["final_acc"] > none.metrics["final_acc"] - 0.1
    for rec in result.records:
        assert rec.metrics["wire_bytes"] <= none.metrics["wire_bytes"] * 1.001
