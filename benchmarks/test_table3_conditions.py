"""Table III: behavioural semantics of each model's pull/push conditions."""


from repro.bench.tables import table3_conditions


def test_table3_conditions(run_experiment, scale):
    result = run_experiment(table3_conditions, scale)
    bsp = result.find("bsp")
    ssp = result.find("ssp(2)")
    asp = result.find("asp")
    dsps = result.find("dsps")
    pssp = result.find("pssp(2,0.5)")

    # BSP: zero staleness, the most DPRs.
    assert bsp.metrics["max_staleness"] == 0
    assert bsp.metrics["dprs"] >= ssp.metrics["dprs"]
    # SSP: staleness bounded by s under lazy execution.
    assert ssp.metrics["max_staleness"] <= 2
    # ASP: never delays, staleness unbounded in principle.
    assert asp.metrics["dprs"] == 0
    assert asp.metrics["max_staleness"] >= ssp.metrics["max_staleness"]
    # DSPS: staleness stays within its configured band.
    assert dsps.metrics["max_staleness"] <= 8
    # PSSP: fewer DPRs than SSP at the same s, staleness may exceed s.
    assert pssp.metrics["dprs"] <= ssp.metrics["dprs"] * 1.05
