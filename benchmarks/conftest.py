"""Benchmark configuration: scale resolution and result persistence.

Run with ``pytest benchmarks/ --benchmark-only``.  Set ``REPRO_SCALE=paper``
for near-paper-scale runs (minutes each); the default QUICK scale keeps
every bench in seconds while preserving the paper's qualitative shape.
Each bench prints the same rows the paper's figure/table reports and
writes a JSON copy under ``results/``.
"""

import pytest

from repro.bench.harness import resolve_scale


@pytest.fixture(scope="session")
def scale():
    return resolve_scale()


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment function exactly once under pytest-benchmark,
    print its table, persist it, and return the ExperimentResult."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        result.show()
        try:
            result.save()
        except OSError:
            pass  # read-only working dir is fine; stdout has the table
        return result

    return _run
