"""Figure 7: FluentPS stays accurate as the cluster grows; PMLS collapses."""

from repro.bench.figures import fig7_scalability


def test_fig7_scalability(run_experiment, scale):
    result = run_experiment(fig7_scalability, scale)
    counts = sorted(scale.worker_counts)
    small, big = counts[0], counts[-1]
    fl_small = result.find(f"N{small}").metrics["fluentps"]
    fl_big = result.find(f"N{big}").metrics["fluentps"]
    tb_big = result.find(f"N{big}").metrics["pmls"]
    # FluentPS: no convergence loss at scale (within noise).
    assert fl_big > fl_small - 0.08
    # PMLS/SSPtable: markedly below FluentPS at the largest cluster.
    assert tb_big < fl_big - 0.1
