"""Ablation: straggler-distribution sensitivity of the model ordering."""

from repro.bench.ablations import ablation_stragglers


def test_ablation_stragglers(run_experiment, scale):
    result = run_experiment(ablation_stragglers, scale)
    regimes = {rec.name.rsplit("_", 1)[0] for rec in result.records}
    for regime in regimes:
        bsp = result.find(f"{regime}_bsp")
        ssp = result.find(f"{regime}_ssp(3)")
        asp = result.find(f"{regime}_asp")
        # The paper's ordering holds in every regime: ASP <= SSP <= BSP.
        assert asp.metrics["duration"] <= ssp.metrics["duration"] * 1.01, regime
        assert ssp.metrics["duration"] <= bsp.metrics["duration"] * 1.01, regime
        assert asp.metrics["dprs"] == 0
