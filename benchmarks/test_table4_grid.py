"""Table IV: {DNN x dataset} x {soft, lazy} x P grid of time/acc/DPRs.

At QUICK scale only the two CIFAR-10 rows run; REPRO_SCALE=paper adds the
CIFAR-100 rows (set via the workloads argument below).
"""


from repro.bench.tables import table4_grid


def test_table4_grid(run_experiment, scale):
    if scale.name == "paper":
        workloads = None  # all four rows
    else:
        workloads = ["alexnet-cifar10", "resnet56-cifar10"]
    result = run_experiment(table4_grid, scale, workloads=workloads)

    for row in (workloads or ["alexnet-cifar10", "alexnet-cifar100",
                              "resnet56-cifar10", "resnet56-cifar100"]):
        asp_soft = result.find(f"{row}_soft_P0.0")
        ssp_soft = result.find(f"{row}_soft_P1.0")
        ssp_lazy = result.find(f"{row}_lazy_P1.0")
        pssp_soft = result.find(f"{row}_soft_P0.5")

        # Soft barrier: time grows with P (ASP fastest, SSP slowest).
        assert asp_soft.metrics["time_per_100it"] <= ssp_soft.metrics["time_per_100it"]
        assert pssp_soft.metrics["time_per_100it"] <= ssp_soft.metrics["time_per_100it"] * 1.05
        # Lazy execution slashes SSP's DPRs relative to the soft barrier.
        assert ssp_lazy.metrics["dprs_per_100"] < ssp_soft.metrics["dprs_per_100"]
        # ASP produces zero DPRs by definition.
        assert asp_soft.metrics["dprs_per_100"] == 0
        # Accuracies stay in a band (no divergence under any model).
        accs = [r.metrics["final_acc"] for r in result.records if r.name.startswith(row)]
        assert min(accs) > 0.2
