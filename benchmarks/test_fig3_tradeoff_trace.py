"""Figure 3: the soft-barrier/lazy-execution delay-vs-staleness trade-off."""

from repro.bench.figures import fig3_tradeoff_trace


def test_fig3_tradeoff_trace(run_experiment):
    result = run_experiment(fig3_tradeoff_trace)
    soft = result.find("soft")
    lazy = result.find("lazy")
    # Soft barrier: released after ONE slow-worker push, parameters stale.
    assert soft.metrics["released_after"] == 1
    assert soft.metrics["missing"] == 3
    # Lazy execution: released after full catch-up, parameters complete.
    assert lazy.metrics["released_after"] == 4
    assert lazy.metrics["missing"] == 0
