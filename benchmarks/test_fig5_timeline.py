"""Figure 5: non-overlap (PS-Lite) vs overlap (FluentPS) synchronization."""

from repro.bench.figures import fig5_timeline


def test_fig5_timeline(run_experiment, scale):
    result = run_experiment(fig5_timeline, scale)
    non = result.find("pslite-nonoverlap")
    ovl = result.find("fluentps-overlap")
    # Overlap never loses: the pull transfers overlap remaining pushes.
    assert ovl.metrics["duration"] <= non.metrics["duration"]
    assert ovl.metrics["comm"] < non.metrics["comm"]
    # Compute time is identical by construction (same sampled durations).
    assert abs(ovl.metrics["compute"] - non.metrics["compute"]) < 1e-9
