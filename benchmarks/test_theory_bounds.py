"""Theorems 1-2: regret-bound chain (Monte-Carlo <= Eq 2 <= Eq 3 = SSP(s'))."""

from repro.bench.theory_bench import theory_bounds


def test_theory_bounds(run_experiment, scale):
    result = run_experiment(theory_bounds, scale)
    for rec in result.records:
        # Exact mixture (Eq 2) never exceeds the closed-form bound (Eq 3).
        assert rec.metrics["series"] <= rec.metrics["bound"] * (1 + 1e-9)
        # Theorem 1: the bound equals the SSP bound at s' = s + 1/c - 1.
        assert abs(rec.metrics["bound"] - rec.metrics["ssp_bound"]) < 1e-9
        # Monte-Carlo regret on the normalized quadratic sits below the bound.
        assert rec.metrics["mc"] < rec.metrics["bound"]
