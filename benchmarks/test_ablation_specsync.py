"""Ablation: PSSP's probabilistic pauses vs SpecSync's computation aborts."""

from repro.bench.ablations import ablation_specsync


def test_ablation_specsync(run_experiment, scale):
    result = run_experiment(ablation_specsync, scale)
    spec = result.find("specsync")
    pssp = result.find("pssp(3,0.3)")
    # SpecSync pays for freshness with aborted computations ...
    assert spec.metrics["aborts"] > 0
    assert spec.metrics["wasted"] > 0
    # ... PSSP reaches comparable accuracy without any aborts and no slower.
    assert pssp.metrics["aborts"] == 0
    assert pssp.metrics["duration"] <= spec.metrics["duration"] * 1.05
    assert pssp.metrics["final_acc"] > spec.metrics["final_acc"] - 0.08
