"""Figure 10: accuracy vs time across sync models at the big cluster size."""

from repro.bench.figures import fig10_models


def test_fig10_models(run_experiment, scale):
    result = run_experiment(fig10_models, scale)
    bsp = result.find("bsp")
    asp = result.find("asp")
    ssp = result.find("ssp(s=3)")
    pssp05 = result.find("pssp(s=3,c=0.5)")
    # Time ordering: ASP fastest, BSP slowest, PSSP between ASP and SSP.
    assert asp.metrics["duration"] <= pssp05.metrics["duration"] * 1.02
    assert pssp05.metrics["duration"] <= ssp.metrics["duration"] * 1.02
    assert bsp.metrics["duration"] > asp.metrics["duration"]
    # DPR ordering: ASP none; PSSP fewer than SSP.
    assert asp.metrics["dprs_per_100"] == 0
    assert pssp05.metrics["dprs_per_100"] <= ssp.metrics["dprs_per_100"] * 1.05
    # Accuracy stays in a tight band across models (robust convergence).
    accs = [r.metrics["final_acc"] for r in result.records]
    assert max(accs) - min(accs) < 0.15
