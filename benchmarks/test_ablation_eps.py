"""Ablations: EPS chunk sizing/rebalance and per-shard model mixing."""

from repro.bench.ablations import ablation_eps_chunks, ablation_per_shard_models


def test_ablation_eps_chunks(run_experiment, scale):
    result = run_experiment(ablation_eps_chunks, scale)
    imb = [rec.metrics["imbalance8"] for rec in result.records]
    # Finer chunks never worsen balance (monotone non-increasing trend).
    assert imb[-1] <= imb[0]
    assert imb[-1] < 1.1  # smallest chunks: near-perfect balance
    for rec in result.records:
        assert rec.metrics["imbalance6"] >= 1.0


def test_ablation_per_shard_models(run_experiment, scale):
    result = run_experiment(ablation_per_shard_models, scale)
    uniform = result.find("uniform ssp(3)")
    mixed = result.find("mixed ssp/pssp/drop")
    # Mixed per-shard deployments run to completion with comparable time.
    assert mixed.metrics["duration"] <= uniform.metrics["duration"] * 1.25
