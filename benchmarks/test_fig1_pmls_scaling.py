"""Figure 1: Bösen/PMLS (SSPtable) accuracy degrades as workers grow."""

from repro.bench.figures import fig1_pmls_scaling


def test_fig1_pmls_scaling(run_experiment, scale):
    result = run_experiment(fig1_pmls_scaling, scale)
    counts = sorted(scale.worker_counts)
    small = result.find(f"pmls_N{counts[0]}").metrics["final_acc"]
    big = result.find(f"pmls_N{counts[-1]}").metrics["final_acc"]
    # Paper shape: large clusters lose accuracy at the same iteration count.
    assert big < small, f"expected degradation: N={counts[0]} acc {small} vs N={counts[-1]} acc {big}"
