"""Figure 11: the Figure-10 comparison at double the worker count."""

from repro.bench.figures import fig11_models


def test_fig11_models(run_experiment, scale):
    result = run_experiment(fig11_models, scale)
    asp = result.find("asp")
    ssp = result.find("ssp(s=3)")
    pssp03 = result.find("pssp(s=3,c=0.3)")
    pssp05 = result.find("pssp(s=3,c=0.5)")
    # PSSP keeps SSP-level accuracy at twice the worker count (paper:
    # PSSP's advantage grows with N; +3.9% over ASP at 128 workers).
    best_pssp = max(pssp03.metrics["final_acc"], pssp05.metrics["final_acc"])
    assert best_pssp > asp.metrics["final_acc"] - 0.03
    assert best_pssp > ssp.metrics["final_acc"] - 0.05
    # And remains faster than SSP.
    assert pssp03.metrics["duration"] <= ssp.metrics["duration"] * 1.02
